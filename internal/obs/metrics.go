package obs

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Metric family names exported at /metrics. Kept in one place so the
// tests, the load-smoke gate, and the README stay in sync.
const (
	MetricEngineStart      = "bpms_engine_start_seconds"
	MetricEngineTransition = "bpms_engine_transition_seconds"
	MetricWALAppend        = "bpms_wal_append_seconds"
	MetricWALFsync         = "bpms_wal_fsync_seconds"
	MetricHistoryCommit    = "bpms_history_commit_seconds"
	MetricHistoryQueue     = "bpms_history_queue_depth"
	MetricTaskOp           = "bpms_task_op_seconds"
	MetricTaskItems        = "bpms_task_items"
	MetricTimerFireLag     = "bpms_timer_fire_lag_seconds"
	MetricTimerPending     = "bpms_timer_pending"
	MetricHTTPRequests     = "bpms_http_requests_total"
	MetricHTTPSeconds      = "bpms_http_request_seconds"
	MetricShardInstances   = "bpms_shard_instances"
	MetricShardDegraded    = "bpms_shard_degraded"
	MetricAuditSweeps      = "bpms_audit_sweeps_total"
	MetricAuditViolations  = "bpms_audit_violations_total"
	MetricAuditActive      = "bpms_audit_active_violations"
	MetricAuditSweepTime   = "bpms_audit_sweep_seconds"
	MetricRulesEval        = "bpms_rules_eval_seconds"
	MetricRulesDecisions   = "bpms_rules_decisions_total"
	MetricUptime           = "bpms_uptime_seconds"
	MetricStartTime        = "bpms_process_start_time_seconds"
)

// RulesBuckets are the latency bounds for decision-table evaluation:
// an indexed probe lands around a microsecond, a 10k-rule linear scan
// in the milliseconds, so the default 50µs floor would flatten the
// distribution this histogram exists to show.
var RulesBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 50e-3, 250e-3, 1,
}

// Metrics owns the registry and hands out pre-resolved instrument
// handles to the subsystems. A nil *Metrics is the disabled form:
// every accessor returns zero-value handle bundles whose nil
// instruments make each observation site a single branch.
type Metrics struct {
	registry *Registry
	start    time.Time
}

// New builds a registry pre-declaring the process-level families and
// the uptime sampler.
func New() *Metrics {
	m := &Metrics{registry: NewRegistry(), start: time.Now()}
	up := m.registry.Gauge(MetricUptime, "Seconds since the process started.")
	st := m.registry.Gauge(MetricStartTime, "Unix time the process started.")
	st.Set(m.start.Unix())
	m.registry.AddSampler(func() { up.Set(int64(time.Since(m.start).Seconds())) })
	return m
}

// Registry exposes the underlying registry (nil on disabled Metrics).
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.registry
}

// StartTime is when New was called (process start for bpmsd).
func (m *Metrics) StartTime() time.Time {
	if m == nil {
		return time.Time{}
	}
	return m.start
}

// AddSampler forwards to the registry (no-op when disabled).
func (m *Metrics) AddSampler(fn func()) {
	if m != nil {
		m.registry.AddSampler(fn)
	}
}

// EngineMetrics instruments one engine shard's enactment hot paths.
type EngineMetrics struct {
	// Start observes StartInstance latency (instance creation through
	// the first quiescent state, including the WAL write).
	Start *Histogram
	// Transition observes externally driven instance transitions
	// (task completion resume, message delivery, variable set, cancel).
	Transition *Histogram
}

// EngineShard returns the handles for shard i.
func (m *Metrics) EngineShard(i int) EngineMetrics {
	if m == nil {
		return EngineMetrics{}
	}
	shard := strconv.Itoa(i)
	return EngineMetrics{
		Start: m.registry.Histogram(MetricEngineStart,
			"StartInstance latency by engine shard.", nil, "shard", shard),
		Transition: m.registry.Histogram(MetricEngineTransition,
			"Instance transition latency by engine shard.", nil, "shard", shard),
	}
}

// WALMetrics instruments one journal's append and fsync paths.
type WALMetrics struct {
	// Append observes the full append call, including any group-commit
	// durability wait for AppendDurable.
	Append *Histogram
	// Fsync observes each physical file sync.
	Fsync *Histogram
}

// WAL returns the handles for the named journal (state-0, history-1, …).
func (m *Metrics) WAL(name string) WALMetrics {
	if m == nil {
		return WALMetrics{}
	}
	return WALMetrics{
		Append: m.registry.Histogram(MetricWALAppend,
			"WAL append latency by journal (includes durability wait).", nil, "wal", name),
		Fsync: m.registry.Histogram(MetricWALFsync,
			"WAL fsync latency by journal.", nil, "wal", name),
	}
}

// HistoryStripeMetrics instruments one history pipeline stripe.
type HistoryStripeMetrics struct {
	// Commit observes enqueue-to-commit latency: the time an audit
	// event spends in the stripe queue plus encode+append.
	Commit *Histogram
	// Depth tracks the stripe queue depth (enqueued, not yet
	// committed).
	Depth *Gauge
}

// HistoryStripe returns the handles for stripe i.
func (m *Metrics) HistoryStripe(i int) HistoryStripeMetrics {
	if m == nil {
		return HistoryStripeMetrics{}
	}
	stripe := strconv.Itoa(i)
	return HistoryStripeMetrics{
		Commit: m.registry.Histogram(MetricHistoryCommit,
			"History event enqueue-to-commit latency by stripe.", nil, "stripe", stripe),
		Depth: m.registry.Gauge(MetricHistoryQueue,
			"History pipeline queue depth by stripe.", "stripe", stripe),
	}
}

// TaskMetrics instruments the worklist service.
type TaskMetrics struct {
	// Op returns the latency histogram for one worklist operation
	// (create, claim, start, complete, …). Resolved once per verb at
	// wiring time by the service.
	Op func(op string) *Histogram
	// Items returns the gauge for one work-item state; refreshed by a
	// scrape sampler, not on the hot path.
	Items func(state string) *Gauge
}

// Tasks returns the worklist handle factory.
func (m *Metrics) Tasks() TaskMetrics {
	if m == nil {
		return TaskMetrics{}
	}
	return TaskMetrics{
		Op: func(op string) *Histogram {
			return m.registry.Histogram(MetricTaskOp,
				"Worklist operation latency by operation.", nil, "op", op)
		},
		Items: func(state string) *Gauge {
			return m.registry.Gauge(MetricTaskItems,
				"Work items by state.", "state", state)
		},
	}
}

// RulesMetrics instruments decision-table evaluation.
type RulesMetrics struct {
	// Eval observes each table evaluation (per env for EvalBatch).
	Eval *Histogram
	// Decisions returns the per-table outcome counter; result is
	// "match", "no_match" (ErrNoMatch), or "error" (any other
	// evaluation failure). Resolved once per table at wiring time.
	Decisions func(table, result string) *Counter
}

// Rules returns the decision-table handles.
func (m *Metrics) Rules() RulesMetrics {
	if m == nil {
		return RulesMetrics{}
	}
	return RulesMetrics{
		Eval: m.registry.Histogram(MetricRulesEval,
			"Decision-table evaluation latency.", RulesBuckets),
		Decisions: func(table, result string) *Counter {
			return m.registry.Counter(MetricRulesDecisions,
				"Decision-table evaluations by table and result.",
				"table", table, "result", result)
		},
	}
}

// TimerMetrics instruments the deadline service.
type TimerMetrics struct {
	// FireLag observes fire-time minus deadline for every fired timer.
	FireLag *Histogram
	// Pending tracks scheduled-but-unfired timers (scrape sampler).
	Pending *Gauge
}

// Timers returns the deadline-service handles.
func (m *Metrics) Timers() TimerMetrics {
	if m == nil {
		return TimerMetrics{}
	}
	return TimerMetrics{
		FireLag: m.registry.Histogram(MetricTimerFireLag,
			"Timer fire lag: fire time minus scheduled deadline.", nil),
		Pending: m.registry.Gauge(MetricTimerPending,
			"Scheduled timers not yet fired."),
	}
}

// ShardInstances returns the per-shard live-instance gauge (refreshed
// by a scrape sampler).
func (m *Metrics) ShardInstances(i int) *Gauge {
	if m == nil {
		return nil
	}
	return m.registry.Gauge(MetricShardInstances,
		"Live process instances by engine shard.", "shard", strconv.Itoa(i))
}

// ShardDegraded returns the per-shard fail-stop gauge (1 when the
// shard has frozen into read-only degraded mode, 0 while healthy;
// refreshed by a scrape sampler).
func (m *Metrics) ShardDegraded(i int) *Gauge {
	if m == nil {
		return nil
	}
	return m.registry.Gauge(MetricShardDegraded,
		"Shard fail-stop state: 1 = degraded (read-only), 0 = healthy.", "shard", strconv.Itoa(i))
}

// AuditMetrics instruments the SLA-audit sweeper.
type AuditMetrics struct {
	// Sweeps counts completed audit sweeps.
	Sweeps *Counter
	// SweepSeconds observes sweep duration.
	SweepSeconds *Histogram
	// Violations returns the counter for newly detected violations of
	// one kind; Active the gauge of currently active violations.
	Violations func(kind string) *Counter
	Active     func(kind string) *Gauge
}

// Audit returns the sweeper handles.
func (m *Metrics) Audit() AuditMetrics {
	if m == nil {
		return AuditMetrics{}
	}
	return AuditMetrics{
		Sweeps: m.registry.Counter(MetricAuditSweeps,
			"Completed SLA-audit sweeps."),
		SweepSeconds: m.registry.Histogram(MetricAuditSweepTime,
			"SLA-audit sweep duration.", nil),
		Violations: func(kind string) *Counter {
			return m.registry.Counter(MetricAuditViolations,
				"SLA violations detected, by kind (counted once per violation).", "kind", kind)
		},
		Active: func(kind string) *Gauge {
			return m.registry.Gauge(MetricAuditActive,
				"Currently active SLA violations by kind.", "kind", kind)
		},
	}
}

// HTTPRouteMetrics instruments one registered HTTP route. The
// latency histogram is resolved at registration; status-code request
// counters are resolved lazily on first use of each code and cached.
type HTTPRouteMetrics struct {
	m       *Metrics
	route   string
	Seconds *Histogram
	codes   sync.Map // int status -> *Counter
}

// HTTPRoute returns (nil when disabled) the handles for one route
// pattern, e.g. "GET /api/v1/instances".
func (m *Metrics) HTTPRoute(route string) *HTTPRouteMetrics {
	if m == nil {
		return nil
	}
	return &HTTPRouteMetrics{
		m:     m,
		route: route,
		Seconds: m.registry.Histogram(MetricHTTPSeconds,
			"HTTP request latency by route.", nil, "route", route),
	}
}

// Done records one finished request with its status code.
func (h *HTTPRouteMetrics) Done(code int, d time.Duration) {
	if h == nil {
		return
	}
	h.Seconds.Observe(d)
	if c, ok := h.codes.Load(code); ok {
		c.(*Counter).Inc()
		return
	}
	c := h.m.registry.Counter(MetricHTTPRequests,
		"HTTP requests by route and status code.",
		"route", h.route, "code", strconv.Itoa(code))
	actual, _ := h.codes.LoadOrStore(code, c)
	actual.(*Counter).Inc()
}

// Handler returns the /metrics scrape handler.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if m == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.registry.WritePrometheus(w)
	})
}
