package obs

import (
	"sort"
	"sync"
	"time"
)

// Violation kinds reported by the Auditor.
const (
	// KindTaskOverdue: an open work item whose due time has passed
	// (explicit dueIn deadlines and the -task-sla default alike).
	KindTaskOverdue = "task_overdue"
	// KindTimerLag: a scheduled timer whose deadline passed at least a
	// full sweep interval ago without firing — the deadline service is
	// stalled or badly behind.
	KindTimerLag = "timer_lag"
	// KindDefinitionUnsound: a deployed process definition that fails
	// soundness re-verification.
	KindDefinitionUnsound = "definition_unsound"
)

// Violation is one active SLA/deadline violation found by a sweep.
type Violation struct {
	// Kind classifies the violation (Kind* constants).
	Kind string `json:"kind"`
	// ID identifies the violating object within its kind: work-item
	// ID, timer ID, or process-definition ID.
	ID string `json:"id"`
	// InstanceID / ProcessID locate the violation in the process
	// space when known.
	InstanceID string `json:"instanceId,omitempty"`
	ProcessID  string `json:"processId,omitempty"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
	// Since is when the deadline passed (or the check first failed).
	Since time.Time `json:"since"`
	// Detected is when a sweep first saw the violation.
	Detected time.Time `json:"detected"`
}

func (v *Violation) key() string { return v.Kind + "\x00" + v.ID }

// AuditorConfig wires an Auditor to the subsystems it sweeps. The
// sweep sources are closures so the obs package stays at the bottom
// of the dependency graph: core adapts the worklist due-time heap,
// the timer wheel, and the verifier (all O(overdue) or slow-cadence).
type AuditorConfig struct {
	// Interval between sweeps (default 5s).
	Interval time.Duration
	// SoundnessEvery re-verifies deployed definitions every Nth sweep
	// (default 12; 0 keeps the default, negative disables).
	SoundnessEvery int
	// Now supplies time (default time.Now) — tests pass a virtual
	// clock.
	Now func() time.Time
	// Overdue walks the worklist due-time heap and returns the open
	// past-due items as violations (Detected left zero).
	Overdue func(now time.Time) []Violation
	// TimerLag walks the timer wheel and returns scheduled entries
	// whose deadline precedes the horizon (now minus a sweep
	// interval).
	TimerLag func(horizon time.Time) []Violation
	// CheckDefinitions re-verifies deployed definitions and returns
	// the unsound ones.
	CheckDefinitions func() []Violation
	// Emit publishes an audit event for a newly detected violation
	// (core enqueues into the history pipeline). Called at most once
	// per violation key.
	Emit func(v Violation)
	// Metrics instruments the sweeper (nil = uninstrumented).
	Metrics *Metrics
}

// Auditor is the background SLA sweeper: on a fixed cadence it walks
// the worklist due-time heap and the timer wheel for deadline
// violations and, on a slower cadence, re-verifies deployed
// definitions' soundness. Each violation is counted and emitted as an
// audit event exactly once — a still-overdue task on the next sweep
// stays in the active set without being re-counted — and the current
// active set backs GET /api/v1/violations.
type Auditor struct {
	cfg  AuditorConfig
	am   AuditMetrics
	vcnt map[string]*Counter // kind -> violations counter
	vact map[string]*Gauge   // kind -> active gauge

	mu     sync.Mutex
	seen   map[string]bool       // violation keys ever counted
	active map[string]*Violation // currently violating
	sweeps uint64

	stop chan struct{}
	done chan struct{}
}

// NewAuditor builds a sweeper; call Start to run it in the
// background, or Sweep directly (tests, manual cadence).
func NewAuditor(cfg AuditorConfig) *Auditor {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.SoundnessEvery == 0 {
		cfg.SoundnessEvery = 12
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	a := &Auditor{
		cfg:    cfg,
		am:     cfg.Metrics.Audit(),
		vcnt:   map[string]*Counter{},
		vact:   map[string]*Gauge{},
		seen:   map[string]bool{},
		active: map[string]*Violation{},
	}
	return a
}

// Start launches the sweep loop.
func (a *Auditor) Start() {
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.Sweep()
			}
		}
	}()
}

// Stop halts the sweep loop and waits for an in-flight sweep.
func (a *Auditor) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// counter and gauge memoize the per-kind instruments.
func (a *Auditor) counter(kind string) *Counter {
	if a.am.Violations == nil {
		return nil
	}
	c, ok := a.vcnt[kind]
	if !ok {
		c = a.am.Violations(kind)
		a.vcnt[kind] = c
	}
	return c
}

func (a *Auditor) gauge(kind string) *Gauge {
	if a.am.Active == nil {
		return nil
	}
	g, ok := a.vact[kind]
	if !ok {
		g = a.am.Active(kind)
		a.vact[kind] = g
	}
	return g
}

// Sweep runs one audit pass and returns the violations newly
// detected by it.
func (a *Auditor) Sweep() []Violation {
	t0 := a.am.SweepSeconds.Start()
	now := a.cfg.Now()

	var current []Violation
	if a.cfg.Overdue != nil {
		current = append(current, a.cfg.Overdue(now)...)
	}
	if a.cfg.TimerLag != nil {
		current = append(current, a.cfg.TimerLag(now.Add(-a.cfg.Interval))...)
	}

	a.mu.Lock()
	soundnessDue := a.cfg.SoundnessEvery > 0 && a.sweeps%uint64(a.cfg.SoundnessEvery) == 0
	a.mu.Unlock()
	if soundnessDue && a.cfg.CheckDefinitions != nil {
		current = append(current, a.cfg.CheckDefinitions()...)
	}

	a.mu.Lock()
	next := make(map[string]*Violation, len(current))
	var fresh []Violation
	for i := range current {
		v := current[i]
		k := v.key()
		if prev, ok := a.active[k]; ok {
			// Still violating: keep the original detection time.
			next[k] = prev
			continue
		}
		v.Detected = now
		next[k] = &v
		if !a.seen[k] {
			// Never counted before: count and emit exactly once.
			a.seen[k] = true
			fresh = append(fresh, v)
		}
	}
	// A soundness pass only runs every Nth sweep; keep definition
	// violations active between passes rather than flapping.
	if !soundnessDue {
		for k, v := range a.active {
			if v.Kind == KindDefinitionUnsound {
				next[k] = v
			}
		}
	}
	a.active = next
	a.sweeps++
	counts := map[string]int64{}
	for _, v := range a.active {
		counts[v.Kind]++
	}
	for kind := range a.vact {
		if _, ok := counts[kind]; !ok {
			counts[kind] = 0
		}
	}
	for _, v := range fresh {
		a.counter(v.Kind).Inc()
	}
	for kind, n := range counts {
		a.gauge(kind).Set(n)
	}
	a.mu.Unlock()

	for _, v := range fresh {
		if a.cfg.Emit != nil {
			a.cfg.Emit(v)
		}
	}
	a.am.Sweeps.Inc()
	a.am.SweepSeconds.Since(t0)
	return fresh
}

// Violations returns the currently active violations, ordered by
// detection time then key (stable for the API and CLI).
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	out := make([]Violation, 0, len(a.active))
	for _, v := range a.active {
		out = append(out, *v)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Detected.Equal(out[j].Detected) {
			return out[i].Detected.Before(out[j].Detected)
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Sweeps reports how many sweeps have completed.
func (a *Auditor) Sweeps() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sweeps
}
