// Package obs is the observability layer of the BPMS: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms) rendered in the Prometheus text
// exposition format, plus a continuous SLA-audit sweeper (Auditor)
// that re-checks live work items, timers, and deployed definitions
// for violations in the background — the gatekeeper pattern of an
// admission path paired with an audit loop and exported metrics.
//
// Instruments are handed to the hot paths as pre-resolved handles so
// an observation is a few atomic adds with no map lookups or locks;
// every instrument method is nil-receiver safe, so uninstrumented
// systems pay one predictable branch per site and no clock reads.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero-cost disabled
// form is a nil *Counter: all methods are nil-safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (must be non-negative to keep the counter monotone).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram bounds in seconds,
// spanning 50µs (an in-memory transition) to 5s (a stalled fsync).
// Shared with the load generator's report so BENCH_T14.json and
// /metrics bucket boundaries line up.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe against a concurrent scrape. Bucket counts are stored
// non-cumulative and summed at render time; the sum is kept in
// nanoseconds so Observe is integer-only. A scrape may see a count
// and sum from slightly different instants — standard for lock-free
// histograms and harmless for rate/quantile math.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	sumNs  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// NewHistogram builds a standalone histogram outside any registry
// (nil bounds = DefBuckets) — used by the load generator's recorder so
// its report buckets match the server's /metrics families.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return newHistogram(bounds)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	h.sumNs.Add(int64(d))
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Start returns the observation start time, or the zero time on a nil
// (disabled) histogram so the site skips the clock read entirely.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since observes the elapsed time from a Start, and is a no-op for
// the disabled form (nil receiver or zero start).
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

// Snapshot returns the bucket upper bounds, per-bucket cumulative
// counts (last entry is the +Inf bucket == total count), the sum in
// seconds, and the total count.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	bounds = h.bounds
	cumulative = make([]uint64, len(h.bounds)+1)
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	c += h.inf.Load()
	cumulative[len(cumulative)-1] = c
	return bounds, cumulative, float64(h.sumNs.Load()) / float64(time.Second), c
}

// metricKind tags a family for `# TYPE` rendering.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labelled instance of a family.
type series struct {
	labels string // rendered `k="v",k2="v2"` (no braces), "" for unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with a help line, a type, and a set of
// labelled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion order of label keys, for stable render
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Handle resolution (Counter, Gauge,
// Histogram) takes a lock; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	fams     []*family
	byName   map[string]*family
	samplers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// labelString renders alternating key/value pairs into the canonical
// `k="v"` form. Values are escaped per the exposition format.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fam returns (creating if needed) the named family, checking that
// redeclarations agree on the kind.
func (r *Registry) fam(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s redeclared as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

func (f *family) get(labels []string) *series {
	key := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns the counter series for name with the given label
// pairs, registering the family on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.fam(name, help, kindCounter, nil).get(labels).c
}

// Gauge returns the gauge series for name with the given label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.fam(name, help, kindGauge, nil).get(labels).g
}

// Histogram returns the histogram series for name with the given
// label pairs. buckets are upper bounds in seconds (nil = DefBuckets);
// only the first registration's buckets apply.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.fam(name, help, kindHistogram, buckets).get(labels).h
}

// AddSampler registers a function run at the start of every scrape,
// before rendering — the place to refresh gauges whose value is read
// from subsystem state (queue depths, per-state item counts) rather
// than maintained on the hot path.
func (r *Registry) AddSampler(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers = append(r.samplers, fn)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// WritePrometheus runs the samplers and renders every family in the
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	samplers := make([]func(), len(r.samplers))
	copy(samplers, r.samplers)
	r.mu.Unlock()

	// Samplers run outside the lock (they read subsystem state) and
	// BEFORE the family snapshot: a gauge a sampler creates lazily on
	// its first refresh must render in this same scrape.
	for _, fn := range samplers {
		fn()
	}

	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		rows := make([]*series, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range rows {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, s.labels, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, s.labels, "", float64(s.g.Value()))
			case kindHistogram:
				bounds, cum, sum, count := s.h.Snapshot()
				for i, ub := range bounds {
					writeSample(&b, f.name+"_bucket", s.labels, `le="`+formatFloat(ub)+`"`, float64(cum[i]))
				}
				writeSample(&b, f.name+"_bucket", s.labels, `le="+Inf"`, float64(count))
				writeSample(&b, f.name+"_sum", s.labels, "", sum)
				writeSample(&b, f.name+"_count", s.labels, "", float64(count))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one `name{labels} value` line. extra is an
// additional pre-rendered label (the histogram `le`).
func writeSample(b *strings.Builder, name, labels, extra string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}
