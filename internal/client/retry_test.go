package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenOK answers n shed responses, then succeeds.
func shedThenOK(n int32, shedStatus int, code string) (*httptest.Server, *atomic.Int32) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(shedStatus)
			w.Write([]byte(`{"error":{"code":"` + code + `","message":"shed"},"message":"shed"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"i-1","processId":"p","status":"active"}`))
	}))
	return ts, &calls
}

func fastRetry(attempts int) Option {
	return WithRetry(RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
}

// TestRetryShedPOST: 429/503 sheds are retried even on POST — the
// server guarantees sheds happen before side effects.
func TestRetryShedPOST(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
	}{
		{http.StatusTooManyRequests, CodeOverloaded},
		{http.StatusServiceUnavailable, CodeOverloaded},
		{http.StatusServiceUnavailable, CodeShardDegraded},
	} {
		ts, calls := shedThenOK(2, tc.status, tc.code)
		c := New(ts.URL, fastRetry(5))
		inst, err := c.StartInstance(context.Background(), "p", nil)
		if err != nil {
			t.Fatalf("%d %s: %v", tc.status, tc.code, err)
		}
		if inst.ID != "i-1" {
			t.Fatalf("instance = %+v", inst)
		}
		if got := calls.Load(); got != 3 {
			t.Fatalf("%d %s: %d calls, want 3", tc.status, tc.code, got)
		}
		if c.Retries() != 2 {
			t.Fatalf("Retries() = %d, want 2", c.Retries())
		}
		ts.Close()
	}
}

// TestNoRetryPlain500POST: an unclassified 500 on a POST is ambiguous
// (the handler may have run) — never retried.
func TestNoRetryPlain500POST(t *testing.T) {
	ts, calls := shedThenOK(100, http.StatusInternalServerError, "internal")
	defer ts.Close()
	c := New(ts.URL, fastRetry(5))
	_, err := c.StartInstance(context.Background(), "p", nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls, want 1 (no retry)", calls.Load())
	}
}

// TestRetry500Idempotent: the same unclassified 500 IS retried on GET.
func TestRetry500Idempotent(t *testing.T) {
	ts, calls := shedThenOK(2, http.StatusInternalServerError, "internal")
	defer ts.Close()
	c := New(ts.URL, fastRetry(5))
	if _, err := c.Instance(context.Background(), "i-1"); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3", calls.Load())
	}
}

// TestNoRetry4xx: client errors are the caller's fault; no retry on
// any method.
func TestNoRetry4xx(t *testing.T) {
	ts, calls := shedThenOK(100, http.StatusNotFound, "unknown_instance")
	defer ts.Close()
	c := New(ts.URL, fastRetry(5))
	_, err := c.Instance(context.Background(), "i-1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "unknown_instance" {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls, want 1", calls.Load())
	}
}

// TestRetryTransportErrorIdempotentOnly: a dead endpoint retries GET
// to exhaustion but fails POST on the first attempt.
func TestRetryTransportErrorIdempotentOnly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // connection refused from here on
	c := New(ts.URL, fastRetry(3))
	if _, err := c.Instance(context.Background(), "x"); err == nil {
		t.Fatal("want transport error")
	}
	if c.Retries() != 2 {
		t.Fatalf("GET retries = %d, want 2", c.Retries())
	}
	if _, err := c.StartInstance(context.Background(), "p", nil); err == nil {
		t.Fatal("want transport error")
	}
	if c.Retries() != 2 {
		t.Fatalf("POST retried a non-idempotent transport failure (retries = %d)", c.Retries())
	}
}

// TestRetryAfterDecoded: the server hint lands on the APIError.
func TestRetryAfterDecoded(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"x"},"message":"x"}`))
	}))
	defer ts.Close()
	c := New(ts.URL) // no retry: surface the error directly
	_, err := c.Instance(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %s, want 7s", ae.RetryAfter)
	}
	if !ae.Retryable() {
		t.Fatal("503 envelope not Retryable()")
	}
}

// TestWithTimeoutDeadline: a per-request timeout cuts a hung server
// off; the deadline spans retries.
func TestWithTimeoutDeadline(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer func() { close(block); ts.Close() }()
	c := New(ts.URL, WithTimeout(50*time.Millisecond))
	start := time.Now()
	_, err := c.Instance(context.Background(), "x")
	if err == nil {
		t.Fatal("want deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not applied: took %s", elapsed)
	}
}
