// Package client is the typed Go client for the bpmsd HTTP API. It
// speaks the versioned v1 surface (/api/v1/...), decodes the v1 error
// envelope into *APIError values, and is shared by bpmsctl and the
// bpmsload macro traffic generator — the one place request/response
// shapes are codified outside the server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bpms/internal/model"
)

// Client talks to one bpmsd base URL.
type Client struct {
	base    string
	hc      *http.Client
	retry   *RetryPolicy  // nil = no retries
	timeout time.Duration // per-request deadline when ctx has none (0 = none)

	retries atomic.Uint64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports with larger connection pools for load drivers).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for a bpmsd base URL such as
// "http://localhost:8080" (any trailing slash is trimmed).
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a decoded v1 error envelope plus the HTTP status it
// arrived with.
type APIError struct {
	Status     int    // HTTP status code
	Code       string // machine-readable code ("unknown_instance", ...)
	Message    string
	RetryAfter time.Duration // server backoff hint (0 = none)
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Machine-readable codes of shed responses — errors the server
// guarantees were refused before any side effect.
const (
	// CodeOverloaded marks an admission-control shed (429/503).
	CodeOverloaded = "overloaded"
	// CodeShardDegraded marks a write refused by a fail-stopped
	// (read-only) shard (503).
	CodeShardDegraded = "shard_degraded"
)

// errEnvelope mirrors the server's error body.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Message string `json:"message"`
}

// do issues one request under the v1 prefix and decodes the response
// into out (skipped when out is nil). Error statuses decode the v1
// envelope into *APIError; an undecodable error body still produces an
// *APIError carrying the raw text.
//
// The request body is materialised to bytes up front, so with a
// RetryPolicy configured each attempt replays the identical body; see
// RetryPolicy for the retry classification.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	ct := ""
	switch b := body.(type) {
	case nil:
	case []byte:
		data, ct = b, "application/json"
	case *rawBody:
		data, ct = b.data, b.contentType
	default:
		enc, err := json.Marshal(body)
		if err != nil {
			return err
		}
		data, ct = enc, "application/json"
	}
	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	attempts := 1
	var pol RetryPolicy
	if c.retry != nil {
		pol, attempts = *c.retry, c.retry.MaxAttempts
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, data, ct, out)
		if err == nil || attempt+1 >= attempts || !retryable(method, err) {
			var pe *permanentError
			if errors.As(err, &pe) {
				return pe.err
			}
			return err
		}
		if sleep(ctx, backoffDelay(pol, attempt, retryAfterOf(err))) != nil {
			return err // deadline hit while backing off: report the attempt's error
		}
		c.retries.Add(1)
	}
}

// doOnce issues exactly one HTTP attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, ct string, out any) error {
	var rd io.Reader
	if data != nil {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+"/api/v1"+path, rd)
	if err != nil {
		return &permanentError{err}
	}
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if w, ok := out.(io.Writer); ok {
		// A failed stream copy may have already written into w — never
		// retried, the caller must restart with a fresh destination.
		if _, err := io.Copy(w, resp.Body); err != nil {
			return &permanentError{err}
		}
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &permanentError{err}
	}
	return nil
}

func decodeAPIError(resp *http.Response) *APIError {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var retryAfter time.Duration
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	var env errEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message, RetryAfter: retryAfter}
	}
	return &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(data)), RetryAfter: retryAfter}
}

// rawBody carries a pre-encoded request body with its content type.
type rawBody struct {
	data        []byte
	contentType string
}

// Deploy deploys a process definition.
func (c *Client) Deploy(ctx context.Context, p *model.Process) error {
	data, err := model.EncodeJSON(p)
	if err != nil {
		return err
	}
	return c.DeployRaw(ctx, data, "application/json")
}

// DeployRaw deploys an already-encoded definition (JSON or XML,
// selected by contentType).
func (c *Client) DeployRaw(ctx context.Context, data []byte, contentType string) error {
	return c.do(ctx, http.MethodPost, "/definitions", &rawBody{data, contentType}, nil)
}

// Definitions lists deployed definition IDs.
func (c *Client) Definitions(ctx context.Context) ([]string, error) {
	var out []string
	err := c.do(ctx, http.MethodGet, "/definitions", nil, &out)
	return out, err
}

// Definition fetches one definition.
func (c *Client) Definition(ctx context.Context, id string) (*model.Process, error) {
	var buf bytes.Buffer
	if err := c.do(ctx, http.MethodGet, "/definitions/"+url.PathEscape(id), nil, &buf); err != nil {
		return nil, err
	}
	return model.DecodeJSON(buf.Bytes())
}

// VerifyResult is the soundness report of GET /definitions/{id}/verify.
type VerifyResult struct {
	Sound        bool   `json:"sound"`
	Bounded      bool   `json:"bounded"`
	Method       string `json:"method"`
	StateCount   int    `json:"stateCount"`
	Violations   any    `json:"violations"`
	DeadElements any    `json:"deadElements"`
	Warnings     any    `json:"warnings"`
}

// Verify soundness-checks a deployed definition.
func (c *Client) Verify(ctx context.Context, id string) (*VerifyResult, error) {
	var out VerifyResult
	err := c.do(ctx, http.MethodGet, "/definitions/"+url.PathEscape(id)+"/verify", nil, &out)
	return &out, err
}

// Token is one parked token position of an instance.
type Token struct {
	Element    string `json:"element"`
	Wait       string `json:"wait,omitempty"`
	WorkItemID string `json:"workItemId,omitempty"`
}

// Instance is a point-in-time instance view.
type Instance struct {
	ID        string         `json:"id"`
	ProcessID string         `json:"processId"`
	Status    string         `json:"status"`
	Vars      map[string]any `json:"vars,omitempty"`
	Tokens    []Token        `json:"tokens,omitempty"`
}

// StartInstance starts an instance of a deployed process.
func (c *Client) StartInstance(ctx context.Context, processID string, vars map[string]any) (*Instance, error) {
	var out Instance
	err := c.do(ctx, http.MethodPost, "/instances",
		map[string]any{"processId": processID, "vars": vars}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Instance fetches one instance.
func (c *Client) Instance(ctx context.Context, id string) (*Instance, error) {
	var out Instance
	if err := c.do(ctx, http.MethodGet, "/instances/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelInstance cancels an active instance.
func (c *Client) CancelInstance(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/instances/"+url.PathEscape(id), nil, nil)
}

// SetVariable sets one case variable on an active instance.
func (c *Client) SetVariable(ctx context.Context, id, name string, value any) error {
	return c.do(ctx, http.MethodPut,
		"/instances/"+url.PathEscape(id)+"/variables/"+url.PathEscape(name), value, nil)
}

// History returns the audit events of one instance (raw JSON objects).
func (c *Client) History(ctx context.Context, id string) ([]map[string]any, error) {
	var out []map[string]any
	err := c.do(ctx, http.MethodGet, "/instances/"+url.PathEscape(id)+"/history", nil, &out)
	return out, err
}

// InstanceSummary is one row of the paginated instance listing.
type InstanceSummary struct {
	ID        string `json:"id"`
	ProcessID string `json:"processId"`
	Status    string `json:"status"`
}

// InstancePage is one page of the instance listing; Total counts the
// full post-filter set, so callers can walk or sample it.
type InstancePage struct {
	Items  []InstanceSummary `json:"items"`
	Total  int               `json:"total"`
	Count  int               `json:"count"`
	Offset int               `json:"offset"`
	Limit  int               `json:"limit"`
}

// InstanceQuery filters and paginates the instance listing. Zero
// Limit means "server default" (everything); use -1 explicitly for an
// unbounded page.
type InstanceQuery struct {
	State  string // active|completed|cancelled|faulted, "" = all
	Offset int
	Limit  int
}

// Instances lists instances with state filtering and pagination.
func (c *Client) Instances(ctx context.Context, q InstanceQuery) (*InstancePage, error) {
	vals := url.Values{}
	if q.State != "" {
		vals.Set("state", q.State)
	}
	if q.Offset > 0 {
		vals.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	path := "/instances"
	if len(vals) > 0 {
		path += "?" + vals.Encode()
	}
	var out InstancePage
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Publish publishes a correlated message; it reports how many waiting
// subscriptions it reached and whether it was buffered for a future
// subscriber.
func (c *Client) Publish(ctx context.Context, name, key string, vars map[string]any) (delivered int, buffered bool, err error) {
	var out struct {
		Delivered int  `json:"delivered"`
		Buffered  bool `json:"buffered"`
	}
	err = c.do(ctx, http.MethodPost, "/messages",
		map[string]any{"name": name, "key": key, "vars": vars}, &out)
	return out.Delivered, out.Buffered, err
}

// Task is a work item as the API serialises it.
type Task struct {
	ID         string         `json:"id"`
	ProcessID  string         `json:"processId"`
	InstanceID string         `json:"instanceId"`
	ElementID  string         `json:"elementId"`
	Name       string         `json:"name,omitempty"`
	State      string         `json:"state"`
	Role       string         `json:"role,omitempty"`
	Assignee   string         `json:"assignee,omitempty"`
	Priority   int            `json:"priority,omitempty"`
	Data       map[string]any `json:"data,omitempty"`
	Outcome    map[string]any `json:"outcome,omitempty"`
	Reason     string         `json:"reason,omitempty"`
}

// UserTasks returns a user's worklist (allocated/started items) and
// offers — the legacy two-list shape of GET /tasks?user=.
func (c *Client) UserTasks(ctx context.Context, user string) (worklist, offered []Task, err error) {
	var out struct {
		Worklist []Task `json:"worklist"`
		Offered  []Task `json:"offered"`
	}
	err = c.do(ctx, http.MethodGet, "/tasks?user="+url.QueryEscape(user), nil, &out)
	return out.Worklist, out.Offered, err
}

// TaskQuery filters the paginated task listing; State is required by
// the server unless User alone is wanted (use UserTasks for that).
type TaskQuery struct {
	User   string
	State  string
	Offset int
	Limit  int
}

// TaskPage is one page of the filtered task listing.
type TaskPage struct {
	Items  []Task `json:"items"`
	Count  int    `json:"count"`
	Offset int    `json:"offset"`
	Limit  int    `json:"limit"`
}

// Tasks lists work items by state (optionally per user), paginated.
func (c *Client) Tasks(ctx context.Context, q TaskQuery) (*TaskPage, error) {
	vals := url.Values{}
	if q.User != "" {
		vals.Set("user", q.User)
	}
	if q.State != "" {
		vals.Set("state", q.State)
	}
	if q.Offset > 0 {
		vals.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	var out TaskPage
	if err := c.do(ctx, http.MethodGet, "/tasks?"+vals.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// taskAction posts one lifecycle action on a work item.
func (c *Client) taskAction(ctx context.Context, id, action string, body map[string]any) (*Task, error) {
	var out Task
	err := c.do(ctx, http.MethodPost, "/tasks/"+url.PathEscape(id)+"/"+action, body, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Claim claims an offered work item for a user.
func (c *Client) Claim(ctx context.Context, id, user string) (*Task, error) {
	return c.taskAction(ctx, id, "claim", map[string]any{"user": user})
}

// StartTask starts an allocated work item.
func (c *Client) StartTask(ctx context.Context, id, user string) (*Task, error) {
	return c.taskAction(ctx, id, "start", map[string]any{"user": user})
}

// CompleteTask completes a started work item with an outcome payload.
func (c *Client) CompleteTask(ctx context.Context, id, user string, outcome map[string]any) (*Task, error) {
	return c.taskAction(ctx, id, "complete", map[string]any{"user": user, "outcome": outcome})
}

// FailTask fails a started work item with a reason.
func (c *Client) FailTask(ctx context.Context, id, user, reason string) (*Task, error) {
	return c.taskAction(ctx, id, "fail", map[string]any{"user": user, "reason": reason})
}

// Delegate hands an item from its assignee to another user.
func (c *Client) Delegate(ctx context.Context, id, from, to string) (*Task, error) {
	return c.taskAction(ctx, id, "delegate", map[string]any{"user": from, "to": to})
}

// Release puts an allocated item back on offer.
func (c *Client) Release(ctx context.Context, id, user string) (*Task, error) {
	return c.taskAction(ctx, id, "release", map[string]any{"user": user})
}

// AddUser registers a user with roles in the organisational directory.
func (c *Client) AddUser(ctx context.Context, id string, roles ...string) error {
	return c.do(ctx, http.MethodPost, "/admin/users", map[string]any{"id": id, "roles": roles}, nil)
}

// Stats returns the engine statistics document.
func (c *Client) Stats(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Violation is one active SLA/deadline violation as the audit sweeper
// reports it.
type Violation struct {
	Kind       string `json:"kind"`
	ID         string `json:"id"`
	InstanceID string `json:"instanceId,omitempty"`
	ProcessID  string `json:"processId,omitempty"`
	Detail     string `json:"detail,omitempty"`
	Since      string `json:"since"`
	Detected   string `json:"detected"`
}

// ViolationsReport is the GET /violations document: the sweeper's
// currently active violation set (empty with Enabled false when the
// server runs without -audit-interval).
type ViolationsReport struct {
	Enabled bool        `json:"enabled"`
	Items   []Violation `json:"items"`
	Count   int         `json:"count"`
	Sweeps  uint64      `json:"sweeps"`
}

// Violations fetches the active SLA-violation set.
func (c *Client) Violations(ctx context.Context) (*ViolationsReport, error) {
	var out ViolationsReport
	if err := c.do(ctx, http.MethodGet, "/violations", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot triggers a state snapshot on every shard.
func (c *Client) Snapshot(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodPost, "/admin/snapshot", map[string]any{}, &out)
	return out, err
}

// ExportXES streams the full history as XES into w.
func (c *Client) ExportXES(ctx context.Context, w io.Writer) error {
	return c.do(ctx, http.MethodGet, "/history/xes", nil, w)
}
