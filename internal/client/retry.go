package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy controls the client's classified retry loop.
//
// Classification:
//
//   - 429 and 503 envelope errors are retried on EVERY method: the
//     server sheds these before the handler runs (admission control)
//     or before any state change (degraded shard), so repeating a
//     POST cannot double-apply it.
//   - Transport errors and other 5xx responses are retried only on
//     idempotent methods (GET/PUT/DELETE) — a POST whose connection
//     died mid-flight may have been applied.
//   - 4xx other than 429 are never retried: the request itself is bad.
//
// Each retry backs off exponentially from BaseDelay, capped at
// MaxDelay, with half-width jitter so a shed fleet does not
// resynchronise; a server Retry-After hint raises the floor.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (minimum 1; zero means 1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is a sensible interactive policy: 5 attempts,
// 50ms..2s backoff.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// WithRetry enables classified retries on the client.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &pol
	}
}

// WithTimeout applies a per-request deadline to calls whose context
// has none. The deadline covers one attempt chain including backoff
// sleeps (it wraps the whole do() call).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// Retries reports how many retry attempts (beyond first tries) this
// client has issued — load drivers fold it into their report.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// idempotent reports whether a method is safe to repeat after an
// ambiguous failure (the request may or may not have been applied).
func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// Retryable reports whether the error is a shed response the server
// guarantees had no side effects (admission 429/503, degraded-shard
// 503) — safe to retry regardless of method.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// retryable classifies one attempt's error.
func retryable(method string, err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Retryable() {
			return true
		}
		// Other 5xx: the handler may have partially run.
		return ae.Status >= 500 && idempotent(method)
	}
	// Transport error (connection refused/reset, timeout): ambiguous
	// for non-idempotent methods.
	return idempotent(method)
}

// jitterRand is the shared jitter source; the client has no
// determinism requirement here, only de-synchronisation.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoffDelay computes the sleep before retry attempt n (0-based
// retry index) under p, raising the floor to the server's Retry-After
// hint when one arrived.
func backoffDelay(p RetryPolicy, n int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << uint(n)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Half-width jitter: [d/2, d).
	jitterMu.Lock()
	d = d/2 + time.Duration(jitterRand.Int63n(int64(d/2)+1))
	jitterMu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterOf extracts the server's Retry-After hint from an
// APIError (zero when absent).
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// permanentError marks a failure that must not be retried even on an
// idempotent method — e.g. a response-body decode error or a stream
// copy that already wrote into the caller's writer.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }
