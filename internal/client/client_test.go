package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"bpms/internal/api"
	"bpms/internal/client"
	"bpms/internal/core"
	"bpms/internal/model"
)

func newServer(t *testing.T) *client.Client {
	t.Helper()
	b, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	ts := httptest.NewServer(api.New(b).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

// TestClientRoundTrip drives a full case lifecycle through the typed
// client against a real server: deploy, verify, start, work the task,
// inspect history, and page the listing.
func TestClientRoundTrip(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()

	p := model.New("rt").
		Start("s").
		UserTask("review", model.Name("Review"), model.Role("clerk")).
		End("e").
		Seq("s", "review", "e").
		MustBuild()
	if err := c.Deploy(ctx, p); err != nil {
		t.Fatal(err)
	}
	if err := c.AddUser(ctx, "alice", "clerk"); err != nil {
		t.Fatal(err)
	}

	defs, err := c.Definitions(ctx)
	if err != nil || len(defs) != 1 || defs[0] != "rt" {
		t.Fatalf("Definitions = %v, %v", defs, err)
	}
	got, err := c.Definition(ctx, "rt")
	if err != nil || got.ID != "rt" || len(got.Elements) != len(p.Elements) {
		t.Fatalf("Definition = %+v, %v", got, err)
	}
	vr, err := c.Verify(ctx, "rt")
	if err != nil || !vr.Sound {
		t.Fatalf("Verify = %+v, %v", vr, err)
	}

	inst, err := c.StartInstance(ctx, "rt", map[string]any{"amount": 7})
	if err != nil || inst.Status != "active" {
		t.Fatalf("StartInstance = %+v, %v", inst, err)
	}

	worklist, offered, err := c.UserTasks(ctx, "alice")
	if err != nil || len(worklist) != 0 || len(offered) != 1 {
		t.Fatalf("UserTasks = %v / %v, %v", worklist, offered, err)
	}
	item := offered[0]
	if item.ElementID != "review" || item.State != "offered" {
		t.Fatalf("offered item = %+v", item)
	}
	if _, err := c.Claim(ctx, item.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartTask(ctx, item.ID, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompleteTask(ctx, item.ID, "alice", map[string]any{"approved": true}); err != nil {
		t.Fatal(err)
	}

	inst, err = c.Instance(ctx, inst.ID)
	if err != nil || inst.Status != "completed" {
		t.Fatalf("after complete: %+v, %v", inst, err)
	}
	hist, err := c.History(ctx, inst.ID)
	if err != nil || len(hist) == 0 {
		t.Fatalf("History = %d events, %v", len(hist), err)
	}

	page, err := c.Instances(ctx, client.InstanceQuery{State: "completed", Limit: 10})
	if err != nil || page.Total != 1 || len(page.Items) != 1 {
		t.Fatalf("Instances = %+v, %v", page, err)
	}
	if page.Items[0].ID != inst.ID || page.Items[0].Status != "completed" {
		t.Fatalf("listing row = %+v", page.Items[0])
	}

	stats, err := c.Stats(ctx)
	if err != nil || stats == nil {
		t.Fatalf("Stats = %v, %v", stats, err)
	}
	var xes bytes.Buffer
	if err := c.ExportXES(ctx, &xes); err != nil || !strings.Contains(xes.String(), "<log") {
		t.Fatalf("ExportXES = %v (%d bytes)", err, xes.Len())
	}
}

// TestClientAPIError checks that server failures surface as typed
// *APIError with the machine code from the v1 envelope.
func TestClientAPIError(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()

	_, err := c.Instance(ctx, "nope")
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != 404 || ae.Code != "unknown_instance" || ae.Message == "" {
		t.Fatalf("APIError = %+v", ae)
	}

	_, err = c.StartInstance(ctx, "nope", nil)
	if !errors.As(err, &ae) || ae.Code != "unknown_definition" {
		t.Fatalf("start unknown: %v", err)
	}
}

// TestClientMessagePublish checks correlated delivery end to end: a
// catch subscription fed by Publish, and buffering for early
// messages.
func TestClientMessagePublish(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()

	p := model.New("pay").
		Start("s").
		MessageCatch("wait", "payment", model.CorrelationKey("orderId")).
		End("e").
		Seq("s", "wait", "e").
		MustBuild()
	if err := c.Deploy(ctx, p); err != nil {
		t.Fatal(err)
	}
	inst, err := c.StartInstance(ctx, "pay", map[string]any{"orderId": "o-1"})
	if err != nil {
		t.Fatal(err)
	}
	delivered, _, err := c.Publish(ctx, "payment", "o-1", map[string]any{"ok": true})
	if err != nil || delivered != 1 {
		t.Fatalf("Publish = %d, %v", delivered, err)
	}
	inst, err = c.Instance(ctx, inst.ID)
	if err != nil || inst.Status != "completed" {
		t.Fatalf("after publish: %+v, %v", inst, err)
	}
}
