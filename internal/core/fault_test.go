package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"bpms/internal/engine"
	"bpms/internal/fault"
	"bpms/internal/model"
	"bpms/internal/storage"
)

// startUntilFault drives StartInstance until the injected fault
// surfaces as an error (or the attempt budget runs out).
func startUntilFault(t *testing.T, b *BPMS) error {
	t.Helper()
	if err := b.Engine.Deploy(model.Sequence(1)); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := b.Engine.StartInstance("seq-1", nil); err != nil {
			return err
		}
	}
	return nil
}

// testFailStop exercises the full fail-stop path under one sync
// policy: an injected fsync fault on the state journal must surface
// as an error from the durable write, flip the owning shard into
// read-only degraded mode, fire the OnDegrade callback, and refuse
// subsequent writes with engine.ErrDegraded while reads still serve.
func testFailStop(t *testing.T, policy storage.SyncPolicy, durable bool) {
	var degradedShard atomic.Int64
	degradedShard.Store(-1)
	b, err := Open(Options{
		DataDir:    t.TempDir(),
		SyncPolicy: policy,
		Durable:    durable,
		// Fail the 3rd fsync on the state journal only (the deploy
		// record eats the first); history and snapshots stay healthy.
		FS: fault.NewInjector(fault.OS, fault.Plan{PathContains: "state", FailFsyncAt: 3}),
		OnDegrade: func(shard int, reason string) {
			degradedShard.Store(int64(shard))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	err = startUntilFault(t, b)
	if err == nil {
		t.Fatal("no error surfaced from injected fsync fault")
	}
	if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("fault surfaced as unclassified error: %v", err)
	}

	// The shard fail-stopped: callback fired, stats show it, Ready is
	// false.
	if degradedShard.Load() != 0 {
		t.Fatalf("OnDegrade shard = %d, want 0", degradedShard.Load())
	}
	ready, degraded := b.Ready()
	if ready || len(degraded) != 1 || degraded[0] != 0 {
		t.Fatalf("Ready() = %v %v, want false [0]", ready, degraded)
	}
	stats := b.ShardStats()
	if len(stats) != 1 || !stats[0].Degraded || stats[0].DegradedReason == "" {
		t.Fatalf("ShardStats degraded not reported: %+v", stats)
	}

	// Writes are refused with the documented sentinel...
	if _, err := b.Engine.StartInstance("seq-1", nil); !errors.Is(err, engine.ErrDegraded) {
		t.Fatalf("write on degraded shard: %v, want ErrDegraded", err)
	}
	// ...while reads still serve from the frozen state.
	if got := b.Engine.Definitions(); len(got) != 1 {
		t.Fatalf("reads blocked on degraded shard: %d definitions", len(got))
	}
	if ids := b.Engine.Instances(); len(ids) == 0 {
		t.Fatal("no instances readable on degraded shard")
	}
}

func TestFailStopOnFsyncFaultSyncAlways(t *testing.T) {
	testFailStop(t, storage.SyncAlways, true)
}

func TestFailStopOnFsyncFaultSyncBatch(t *testing.T) {
	testFailStop(t, storage.SyncBatch, true)
}

// TestFailStopENOSPC drives the journal into a byte-budget wall: once
// the device is "full", the shard fail-stops instead of acking writes
// it can no longer persist.
func TestFailStopENOSPC(t *testing.T) {
	b, err := Open(Options{
		DataDir:    t.TempDir(),
		SyncPolicy: storage.SyncAlways,
		Durable:    true,
		FS:         fault.NewInjector(fault.OS, fault.Plan{PathContains: "state", ENOSPCAfter: 4096}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	err = startUntilFault(t, b)
	if err == nil {
		t.Fatal("no error surfaced from ENOSPC budget")
	}
	if ready, _ := b.Ready(); ready {
		t.Fatal("still ready after ENOSPC fail-stop")
	}
}

// TestFaultReportExposed verifies the injector's counters reach the
// system surface (scraped by /api/stats before a chaos kill).
func TestFaultReportExposed(t *testing.T) {
	inj := fault.NewInjector(fault.OS, fault.Plan{})
	b, err := Open(Options{DataDir: t.TempDir(), SyncPolicy: storage.SyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Engine.Deploy(model.Sequence(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Engine.StartInstance("seq-1", nil); err != nil {
		t.Fatal(err)
	}
	rep, ok := b.FaultReport()
	if !ok {
		t.Fatal("FaultReport not exposed through injector-backed FS")
	}
	if rep.Writes == 0 || rep.Fsyncs == 0 {
		t.Fatalf("empty fault report: %+v", rep)
	}

	// A plain-OS system exposes no report.
	b2, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if _, ok := b2.FaultReport(); ok {
		t.Fatal("FaultReport claimed on non-injected FS")
	}
}

// TestRecoveryAfterFailStop is the chaos contract: every write acked
// before the fault survives a kill-and-restart of the data dir (the
// degraded shard froze instead of corrupting its journal).
func TestRecoveryAfterFailStop(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Options{
		DataDir:    dir,
		SyncPolicy: storage.SyncAlways,
		Durable:    true,
		FS:         fault.NewInjector(fault.OS, fault.Plan{PathContains: "state", FailFsyncAt: 4}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Engine.Deploy(model.Sequence(1)); err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 0; i < 100; i++ {
		v, err := b.Engine.StartInstance("seq-1", nil)
		if err != nil {
			break
		}
		acked = append(acked, v.ID)
	}
	if len(acked) == 0 {
		t.Fatal("no instance acked before fault")
	}
	// Abandon without Close: the crash. (Close on a degraded system is
	// exercised elsewhere; here nothing may flush the lost write.)
	_ = b

	b2, err := Open(Options{DataDir: dir, SyncPolicy: storage.SyncAlways, Durable: true})
	if err != nil {
		t.Fatalf("recovery after fail-stop: %v", err)
	}
	defer b2.Close()
	if ready, _ := b2.Ready(); !ready {
		t.Fatal("recovered system not ready")
	}
	for _, id := range acked {
		if _, err := b2.Engine.Instance(id); err != nil {
			t.Fatalf("acked instance %s lost after restart: %v", id, err)
		}
	}
}
