package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/obs"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

func TestOpenInMemory(t *testing.T) {
	b, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.AddUser("alice", "clerk")
	b.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	if err := b.Engine.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	v, err := b.Engine.StartInstance("seq-3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != engine.StatusCompleted {
		t.Fatalf("status = %s", v.Status)
	}
	if b.History.Count() == 0 {
		t.Error("no audit events")
	}
	if l := b.Log(); len(l.Traces) != 1 {
		t.Errorf("log traces = %d", len(l.Traces))
	}
}

func TestOpenPersistentAndReopen(t *testing.T) {
	dir := t.TempDir()
	clock := timer.NewVirtualClock(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	b, err := Open(Options{DataDir: dir, Clock: clock, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	b.AddUser("alice", "clerk")
	p := model.New("held").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v, err := b.Engine.StartInstance("held", map[string]any{"k": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(Options{DataDir: dir, Clock: clock,
		Users: []resource.User{{ID: "alice", Roles: []string{"clerk"}}}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b2.Close()
	got, err := b2.Engine.Instance(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != engine.StatusActive {
		t.Fatalf("recovered status = %s", got.Status)
	}
	// History survived too.
	if b2.History.Count() == 0 {
		t.Error("history lost on reopen")
	}
	// Work item was re-issued; completing it finishes the instance.
	items := b2.Tasks.OfferedItems("alice")
	if len(items) != 1 {
		t.Fatalf("offered after recovery = %d", len(items))
	}
	b2.Tasks.Claim(items[0].ID, "alice")
	b2.Tasks.Start(items[0].ID, "alice")
	b2.Tasks.Complete(items[0].ID, "alice", nil)
	got, _ = b2.Engine.Instance(v.ID)
	if got.Status != engine.StatusCompleted {
		t.Fatalf("status after resume = %s", got.Status)
	}
}

// TestDurableBatchRecoveryWithoutClose is the group-commit durability
// contract at the system level: with SyncPolicy SyncBatch and Durable
// acknowledgements, every state transition that returned survives a
// crash — simulated by reopening the data dir WITHOUT closing the
// first system (Close would flush everything and mask the guarantee).
func TestDurableBatchRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Options{
		DataDir:    dir,
		SyncPolicy: storage.SyncBatch,
		Durable:    true,
		Users:      []resource.User{{ID: "alice", Roles: []string{"clerk"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := model.New("durable-held").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Engine.StartInstance("durable-held", map[string]any{"i": i})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()

	// Crash: no Close. The acked transitions must all be on disk.
	b2, err := Open(Options{DataDir: dir,
		Users: []resource.User{{ID: "alice", Roles: []string{"clerk"}}}})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer b2.Close()
	for _, id := range ids {
		got, err := b2.Engine.Instance(id)
		if err != nil {
			t.Fatalf("acked instance %s lost: %v", id, err)
		}
		if got.Status != engine.StatusActive {
			t.Fatalf("instance %s recovered as %s", id, got.Status)
		}
	}
}

func TestDeployFile(t *testing.T) {
	b, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dir := t.TempDir()

	p := model.Sequence(2)
	jsonData, _ := model.EncodeJSON(p)
	jsonPath := filepath.Join(dir, "proc.json")
	os.WriteFile(jsonPath, jsonData, 0o644)
	if _, err := b.DeployFile(jsonPath); err != nil {
		t.Fatalf("deploy json: %v", err)
	}

	xmlData, _ := model.EncodeXML(model.Mixed())
	xmlPath := filepath.Join(dir, "proc.xml")
	os.WriteFile(xmlPath, xmlData, 0o644)
	if _, err := b.DeployFile(xmlPath); err != nil {
		t.Fatalf("deploy xml: %v", err)
	}

	if got := len(b.Engine.Definitions()); got != 2 {
		t.Errorf("definitions = %d", got)
	}

	if _, err := b.DeployFile(filepath.Join(dir, "nope.yaml")); err == nil {
		t.Error("unknown extension should fail")
	}
	if _, err := b.DeployFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"id":""}`), 0o644)
	if _, err := b.DeployFile(bad); err == nil {
		t.Error("invalid definition should fail")
	}
}

func TestTimerRunnerIntegration(t *testing.T) {
	b, err := Open(Options{RunTimers: true, TimerTick: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p := model.New("quickTimer").
		Start("s").TimerCatch("wait", "20ms").End("e").
		Seq("s", "wait", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v, err := b.Engine.StartInstance("quickTimer", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := b.Engine.Instance(v.ID)
		if got.Status == engine.StatusCompleted {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timer never fired under the background runner")
}

// TestShardedOpenReopen exercises the per-shard data layout: instances
// started on a 4-shard system land in shard-0000…shard-0003 WALs and
// all recover (in parallel) on reopen with the same shard count.
func TestShardedOpenReopen(t *testing.T) {
	dir := t.TempDir()
	users := []resource.User{{ID: "alice", Roles: []string{"clerk"}}}
	b, err := Open(Options{DataDir: dir, Shards: 4, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	p := model.New("held").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	const n = 10
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, err := b.Engine.StartInstance("held", map[string]any{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if got := len(b.ShardStats()); got != 4 {
		t.Fatalf("shard stats = %d entries", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%04d", i), "state")); err != nil {
			t.Fatalf("missing shard %d state dir: %v", i, err)
		}
	}

	// Reopening with a different shard count — fewer OR more — is
	// refused outright.
	if _, err := Open(Options{DataDir: dir, Users: users}); err == nil {
		t.Fatal("reopen with 1 shard should fail on a 4-shard data dir")
	}
	if _, err := Open(Options{DataDir: dir, Shards: 2, Users: users}); err == nil {
		t.Fatal("reopen with 2 shards should fail on a 4-shard data dir")
	}
	if _, err := Open(Options{DataDir: dir, Shards: 8, Users: users}); err == nil {
		t.Fatal("reopen with 8 shards should fail on a 4-shard data dir")
	}

	b2, err := Open(Options{DataDir: dir, Shards: 4, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	for _, id := range ids {
		v, err := b2.Engine.Instance(id)
		if err != nil {
			t.Fatalf("instance %s lost: %v", id, err)
		}
		if v.Status != engine.StatusActive {
			t.Fatalf("instance %s = %s", id, v.Status)
		}
	}
	// And a single-shard dir refuses a sharded reopen.
	sdir := t.TempDir()
	b3, err := Open(Options{DataDir: sdir})
	if err != nil {
		t.Fatal(err)
	}
	b3.Close()
	if _, err := Open(Options{DataDir: sdir, Shards: 4}); err == nil {
		t.Fatal("resharding a single-shard data dir should fail")
	}
}

// TestStripedHistoryOpenReopen covers the striped audit pipeline at
// the system level: events recorded across stripes survive a reopen
// with per-instance order intact, the on-disk layout matches the
// stripe count, and a stripe-count mismatch is refused like a shard
// mismatch.
func TestStripedHistoryOpenReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Options{DataDir: dir, HistoryStripes: 2, HistoryWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	b.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	if err := b.Engine.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	const n = 6
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, err := b.Engine.StartInstance("seq-3", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	total := b.History.Count()
	if total == 0 {
		t.Fatal("no audit events recorded")
	}
	if st := b.History.Stats(); st.Stripes != 2 || st.Window != 16 {
		t.Fatalf("history stats = %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(dir, "history", fmt.Sprintf("stripe-%04d", i))); err != nil {
			t.Fatalf("missing history stripe %d: %v", i, err)
		}
	}

	// Stripe-count mismatches are refused.
	if _, err := Open(Options{DataDir: dir}); err == nil {
		t.Fatal("reopen with 1 stripe should fail on a 2-stripe data dir")
	}
	if _, err := Open(Options{DataDir: dir, HistoryStripes: 4}); err == nil {
		t.Fatal("reopen with 4 stripes should fail on a 2-stripe data dir")
	}

	b2, err := Open(Options{DataDir: dir, HistoryStripes: 2, HistoryWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := b2.History.Count(); got != total {
		t.Fatalf("recovered %d events, want %d", got, total)
	}
	// Every instance's trail replays in order: started first, then the
	// element lifecycle, completed last — even though the 16-event
	// window forces most of it through journal replay.
	for _, id := range ids {
		evs := b2.History.EventsOf(id)
		if len(evs) == 0 {
			t.Fatalf("instance %s: history lost", id)
		}
		if evs[0].Type != "instance.started" {
			t.Errorf("instance %s: first event %s", id, evs[0].Type)
		}
		if last := evs[len(evs)-1].Type; last != "instance.completed" {
			t.Errorf("instance %s: last event %s", id, last)
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Index <= evs[i-1].Index {
				t.Errorf("instance %s: event order broken at %d", id, i)
			}
		}
	}

	// A single-stripe (legacy layout) dir refuses a striped reopen.
	sdir := t.TempDir()
	b3, err := Open(Options{DataDir: sdir})
	if err != nil {
		t.Fatal(err)
	}
	b3.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	if err := b3.Engine.Deploy(model.Sequence(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := b3.Engine.StartInstance("seq-3", nil); err != nil {
		t.Fatal(err)
	}
	if err := b3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{DataDir: sdir, HistoryStripes: 2}); err == nil {
		t.Fatal("re-striping a single-stripe data dir should fail")
	}
}

// TestWorklistStripesThreading: Options.WorklistStripes reaches the
// task service, the striped worklist answers queries identically, and
// recovery re-issues parked work items into it regardless of the
// stripe count (the worklist is in-memory — no on-disk layout to
// match).
func TestWorklistStripesThreading(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(Options{DataDir: dir, WorklistStripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Tasks.Stripes() != 4 {
		t.Fatalf("stripes = %d", b.Tasks.Stripes())
	}
	b.AddUser("alice", "clerk")
	p := model.New("striped-wl").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := b.Engine.StartInstance("striped-wl", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(b.Tasks.OfferedItems("alice")); got != n {
		t.Fatalf("offered = %d, want %d", got, n)
	}
	st := b.Tasks.Stats()
	if st.Stripes != 4 || st.Items != n || st.Open != n {
		t.Fatalf("stats = %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT stripe count: the reissued items must
	// land in the new striped worklist.
	b2, err := Open(Options{DataDir: dir, WorklistStripes: 8,
		Users: []resource.User{{ID: "alice", Roles: []string{"clerk"}}}})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	items := b2.Tasks.OfferedItems("alice")
	if len(items) != n {
		t.Fatalf("offered after recovery = %d, want %d", len(items), n)
	}
	// The recovered worklist still drives instances to completion.
	it := items[0]
	b2.Tasks.Claim(it.ID, "alice")
	b2.Tasks.Start(it.ID, "alice")
	if _, err := b2.Tasks.Complete(it.ID, "alice", nil); err != nil {
		t.Fatal(err)
	}
	got, err := b2.Engine.Instance(it.InstanceID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != engine.StatusCompleted {
		t.Fatalf("status after resume = %s", got.Status)
	}
}

// TestAuditorDetectsOverdueTaskOnce is the sweeper's system-level
// contract: with a default task SLA, an unattended work item becomes a
// violation after its synthetic deadline passes; the violation is
// counted and written to the audit trail exactly once across repeated
// sweeps; and completing the item clears it from the active set.
func TestAuditorDetectsOverdueTaskOnce(t *testing.T) {
	clock := timer.NewVirtualClock(time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC))
	b, err := Open(Options{
		Clock:         clock,
		Metrics:       obs.New(),
		AuditInterval: time.Hour, // ticker never fires in-test; sweeps are manual
		TaskSLA:       time.Minute,
		Users:         []resource.User{{ID: "alice", Roles: []string{"clerk"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p := model.New("audited").
		Start("s").UserTask("work", model.Role("clerk")).End("e").
		Seq("s", "work", "e").MustBuild()
	if err := b.Engine.Deploy(p); err != nil {
		t.Fatal(err)
	}
	v, err := b.Engine.StartInstance("audited", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Before the SLA passes: clean sweep.
	if fresh := b.Auditor.Sweep(); len(fresh) != 0 {
		t.Fatalf("pre-deadline sweep found %d violation(s)", len(fresh))
	}

	clock.Advance(2 * time.Minute)
	fresh := b.Auditor.Sweep()
	if len(fresh) != 1 || fresh[0].Kind != obs.KindTaskOverdue || fresh[0].InstanceID != v.ID {
		t.Fatalf("post-deadline sweep fresh = %+v, want one task_overdue for %s", fresh, v.ID)
	}
	// Still overdue on later sweeps: active, but never re-counted.
	clock.Advance(time.Minute)
	if again := b.Auditor.Sweep(); len(again) != 0 {
		t.Fatalf("repeat sweep re-detected: %+v", again)
	}
	if got := b.Auditor.Violations(); len(got) != 1 {
		t.Fatalf("active violations = %d, want 1", len(got))
	}
	if err := b.History.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := b.History.CountByType(history.SLAViolation); n != 1 {
		t.Fatalf("sla.violation audit events = %d, want exactly 1", n)
	}

	// Work the item: the violation clears from the active set.
	items := b.Tasks.ByState(task.Offered)
	if len(items) != 1 {
		t.Fatalf("offered items = %d", len(items))
	}
	id := items[0].ID
	if _, err := b.Tasks.Claim(id, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tasks.Start(id, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tasks.Complete(id, "alice", nil); err != nil {
		t.Fatal(err)
	}
	if fresh := b.Auditor.Sweep(); len(fresh) != 0 {
		t.Fatalf("post-completion sweep fresh = %+v", fresh)
	}
	if got := b.Auditor.Violations(); len(got) != 0 {
		t.Fatalf("active after completion = %+v, want none", got)
	}
}
