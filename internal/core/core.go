// Package core assembles the BPMS subsystems — engine, worklist,
// organisational directory, timers, history, and storage — into one
// configurable system object, the way the classic BPMS reference
// architecture wires its components. It is the implementation behind
// the repository's public root package.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bpms/internal/engine"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
)

// Options configures a BPMS.
type Options struct {
	// DataDir persists the state journal, history journal, and
	// snapshots under this directory; empty runs fully in memory.
	DataDir string
	// SyncPolicy applies to the file journals (ignored in memory).
	SyncPolicy storage.SyncPolicy
	// SyncInterval is the append count between fsyncs for SyncEvery
	// (default 256).
	SyncInterval int
	// BatchMaxDelay is the SyncBatch max-latency tick (default 2ms):
	// buffered records reach stable storage at least this often.
	BatchMaxDelay time.Duration
	// BatchMaxRecords bounds a SyncBatch group commit (default 1024).
	BatchMaxRecords int
	// Durable makes API-visible state transitions wait for the state
	// journal's durability acknowledgement before returning. Under
	// SyncBatch, concurrent transitions share one group-commit fsync,
	// so this costs one fsync per batch rather than per transition.
	Durable bool
	// SnapshotEvery writes a state snapshot after this many journal
	// appends (0 disables snapshots; requires DataDir).
	SnapshotEvery int
	// AutoAllocate pushes role-routed tasks to users via Policy
	// instead of offering them for claiming.
	AutoAllocate bool
	// Policy is the work-allocation policy (default shortest-queue).
	Policy resource.Policy
	// Clock supplies time (default the system clock). Tests and
	// simulations pass a timer.VirtualClock.
	Clock timer.Clock
	// TimerTick is the timing-wheel granularity (default 10ms).
	TimerTick time.Duration
	// RunTimers starts a background runner driving the timer wheel
	// from the clock (disable when driving time manually).
	RunTimers bool
	// Users seeds the organisational directory before recovery runs,
	// so work items re-issued during recovery route to the right
	// people.
	Users []resource.User
}

// BPMS is a fully assembled business process management system.
type BPMS struct {
	// Engine is the enactment service.
	Engine *engine.Engine
	// Tasks is the worklist service.
	Tasks *task.Service
	// Directory is the organisational model.
	Directory *resource.Directory
	// History is the audit store.
	History *history.Store
	// Timers is the deadline service.
	Timers timer.Service

	clock    timer.Clock
	runner   *timer.Runner
	journals []storage.Journal
}

// Open assembles and (when DataDir is set) recovers a BPMS.
func Open(opts Options) (*BPMS, error) {
	if opts.Clock == nil {
		opts.Clock = timer.RealClock{}
	}
	if opts.Policy == nil {
		opts.Policy = resource.ShortestQueuePolicy{}
	}
	if opts.TimerTick <= 0 {
		opts.TimerTick = 10 * time.Millisecond
	}

	var stateJournal, histJournal storage.Journal
	var snaps *storage.SnapshotStore
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: create data dir: %w", err)
		}
		jopts := storage.Options{
			Policy:          opts.SyncPolicy,
			SyncInterval:    opts.SyncInterval,
			BatchMaxDelay:   opts.BatchMaxDelay,
			BatchMaxRecords: opts.BatchMaxRecords,
		}
		sj, err := storage.OpenFileJournal(filepath.Join(opts.DataDir, "state"), jopts)
		if err != nil {
			return nil, err
		}
		hj, err := storage.OpenFileJournal(filepath.Join(opts.DataDir, "history"), jopts)
		if err != nil {
			sj.Close()
			return nil, err
		}
		stateJournal, histJournal = sj, hj
		if opts.SnapshotEvery > 0 {
			snaps, err = storage.OpenSnapshotStore(filepath.Join(opts.DataDir, "snapshots"), 2)
			if err != nil {
				sj.Close()
				hj.Close()
				return nil, err
			}
		}
	} else {
		stateJournal = storage.NewMemJournal()
		histJournal = storage.NewMemJournal()
	}

	hist, err := history.NewStore(histJournal)
	if err != nil {
		return nil, err
	}
	dir := resource.NewDirectory()
	for i := range opts.Users {
		dir.AddUser(&opts.Users[i])
	}
	tasks := task.NewService(task.Config{
		Directory:    dir,
		Policy:       opts.Policy,
		AutoAllocate: opts.AutoAllocate,
		Now:          opts.Clock.Now,
	})
	wheel := timer.NewWheelService(opts.TimerTick, 512)
	eng, err := engine.New(engine.Config{
		Journal:       stateJournal,
		Snapshots:     snaps,
		SnapshotEvery: opts.SnapshotEvery,
		Tasks:         tasks,
		Timers:        wheel,
		Clock:         opts.Clock,
		History:       hist,
		Durable:       opts.Durable,
	})
	if err != nil {
		return nil, err
	}
	b := &BPMS{
		Engine:    eng,
		Tasks:     tasks,
		Directory: dir,
		History:   hist,
		Timers:    wheel,
		clock:     opts.Clock,
		journals:  []storage.Journal{stateJournal, histJournal},
	}
	if opts.RunTimers {
		b.runner = timer.NewRunner(wheel, opts.Clock, opts.TimerTick)
		b.runner.Start()
	}
	return b, nil
}

// Close stops the timer runner and syncs/closes the journals. Under
// SyncBatch journals this drains in-flight commit batches: every
// acknowledged append is on stable storage when Close returns.
func (b *BPMS) Close() error {
	if b.runner != nil {
		b.runner.Stop()
	}
	var first error
	for _, j := range b.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SyncJournals forces both journals to stable storage (without
// closing them).
func (b *BPMS) SyncJournals() error {
	var first error
	for _, j := range b.journals {
		if err := j.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JournalIndexes reports the state journal's last appended and last
// synced record indices (for shutdown summaries and monitoring). Both
// remain readable after Close.
func (b *BPMS) JournalIndexes() (last, synced uint64) {
	return b.journals[0].LastIndex(), b.journals[0].SyncedIndex()
}

// DeployFile loads a definition from a .json or .xml file, validates
// it, and deploys it.
func (b *BPMS) DeployFile(path string) (*model.Process, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p *model.Process
	switch filepath.Ext(path) {
	case ".json":
		p, err = model.DecodeJSON(data)
	case ".xml", ".bpmn":
		p, err = model.DecodeXML(data)
	default:
		return nil, fmt.Errorf("core: unknown definition format %q", filepath.Ext(path))
	}
	if err != nil {
		return nil, err
	}
	if err := b.Engine.Deploy(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Log exports the audit trail as a mining log (one trace per case).
func (b *BPMS) Log() *history.Log {
	return history.FromEvents(b.History, false)
}

// AddUser registers a user in the organisational directory.
func (b *BPMS) AddUser(id string, roles ...string) {
	b.Directory.AddUser(&resource.User{ID: id, Roles: roles})
}

// Now returns the system clock time.
func (b *BPMS) Now() time.Time { return b.clock.Now() }
