// Package core assembles the BPMS subsystems — engine, worklist,
// organisational directory, timers, history, and storage — into one
// configurable system object, the way the classic BPMS reference
// architecture wires its components. It is the implementation behind
// the repository's public root package.
package core

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"bpms/internal/fault"
	"bpms/internal/history"
	"bpms/internal/model"
	"bpms/internal/obs"
	"bpms/internal/resource"
	"bpms/internal/rules"
	"bpms/internal/shard"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
	"bpms/internal/verify"
)

// Options configures a BPMS.
type Options struct {
	// DataDir persists the state journal, history journal, and
	// snapshots under this directory; empty runs fully in memory.
	DataDir string
	// Shards partitions process instances across this many independent
	// engine shards, each with its own WAL, snapshot store, and
	// group-commit batcher (default 1). With a DataDir and Shards > 1,
	// shard state lives in per-shard subdirectories (shard-0000/…); a
	// data dir must be reopened with the shard count it was created
	// with.
	Shards int
	// SyncPolicy applies to the file journals (ignored in memory).
	SyncPolicy storage.SyncPolicy
	// SyncInterval is the append count between fsyncs for SyncEvery
	// (default 256).
	SyncInterval int
	// BatchMaxDelay is the SyncBatch max-latency tick (default 2ms):
	// buffered records reach stable storage at least this often.
	BatchMaxDelay time.Duration
	// BatchMaxRecords bounds a SyncBatch group commit (default 1024).
	BatchMaxRecords int
	// Durable makes API-visible state transitions wait for the state
	// journal's durability acknowledgement before returning. Under
	// SyncBatch, concurrent transitions share one group-commit fsync,
	// so this costs one fsync per batch rather than per transition.
	Durable bool
	// SnapshotEvery writes a state snapshot after this many journal
	// appends (0 disables snapshots; requires DataDir).
	SnapshotEvery int
	// SnapshotInterval snapshots every shard whose journal advanced on
	// a wall-clock cadence, complementing the append-count trigger:
	// a shard trickling writes still gets its replay prefix bounded
	// (0 disables the scheduler; requires DataDir).
	SnapshotInterval time.Duration
	// SegmentSize caps each WAL segment file before rollover (default
	// 4MiB). Smaller segments tighten snapshot truncation granularity
	// and widen parallel replay; the crash-recovery gate uses tiny
	// segments to observe both.
	SegmentSize int64
	// RecoveryWorkers bounds each shard's recovery decode pool for
	// streaming-snapshot decode and parallel segment replay
	// (0 = GOMAXPROCS, 1 = serial).
	RecoveryWorkers int
	// HistoryStripes partitions the audit/history store into this many
	// stripes (default 1), each with its own journal, committer, and
	// locks; events hash by instance ID. With a DataDir and more than
	// one stripe, history journals live under history/stripe-0000/…; a
	// data dir must be reopened with the stripe count it was created
	// with.
	HistoryStripes int
	// HistoryWindow bounds the number of audit events each history
	// stripe keeps resident in RAM (0 = unbounded). Older events stay
	// queryable through journal replay.
	HistoryWindow int
	// WorklistStripes partitions the task service across this many
	// independently locked item stripes (default 1), each with its own
	// secondary indexes, so claims and completions on different items
	// proceed in parallel. The worklist is in-memory (work items are
	// reissued from the engine journals on recovery), so any stripe
	// count reopens any data dir.
	WorklistStripes int
	// AutoAllocate pushes role-routed tasks to users via Policy
	// instead of offering them for claiming.
	AutoAllocate bool
	// Policy is the work-allocation policy (default shortest-queue).
	Policy resource.Policy
	// Clock supplies time (default the system clock). Tests and
	// simulations pass a timer.VirtualClock.
	Clock timer.Clock
	// TimerTick is the timing-wheel granularity (default 10ms).
	TimerTick time.Duration
	// TimerStripes shards the timing wheel across this many
	// independently locked wheels (default 8; 1 restores the single
	// global wheel). Timer IDs map to stripes by the same modulo
	// placement family the other striped subsystems use.
	TimerStripes int
	// RunTimers starts a background runner driving the timer wheel
	// from the clock (disable when driving time manually).
	RunTimers bool
	// Users seeds the organisational directory before recovery runs,
	// so work items re-issued during recovery route to the right
	// people.
	Users []resource.User
	// Metrics, when set, instruments the hot paths of every subsystem
	// (engine shards, WALs, history stripes, worklist, timers) with
	// the obs registry's lock-free handles and registers the scrape
	// samplers. Nil runs fully uninstrumented: each site pays one
	// branch and no clock reads.
	Metrics *obs.Metrics
	// AuditInterval starts the background SLA-audit sweeper on this
	// cadence (0 disables it). The sweeper walks the worklist
	// due-time heap and the timer wheel for deadline violations and
	// re-verifies deployed definitions' soundness on a slower cadence.
	AuditInterval time.Duration
	// TaskSLA applies a default due time to work items created
	// without an explicit deadline, so the audit sweep covers every
	// open item (0 = only explicit dueIn deadlines are audited).
	TaskSLA time.Duration
	// FS is the filesystem the state and history journals and snapshot
	// stores operate through (default the real OS filesystem). Chaos
	// runs pass a fault.Injector here (bpmsd -fault); when the value
	// also implements fault.Reporter, FaultReport exposes its tally.
	FS fault.FS
	// OnDegrade, when set, is called at most once per shard when that
	// shard fail-stops on a storage I/O error (after the built-in log
	// line and before the next /api/stats scrape can observe it).
	OnDegrade func(shard int, reason string)
}

// BPMS is a fully assembled business process management system.
type BPMS struct {
	// Engine is the enactment runtime: one or more engine shards
	// behind an instance-hash router presenting the single-engine
	// surface.
	Engine *shard.Router
	// Tasks is the worklist service (shared across shards).
	Tasks *task.Service
	// Directory is the organisational model.
	Directory *resource.Directory
	// History is the audit store (shared across shards).
	History *history.Store
	// Timers is the deadline service.
	Timers timer.Service
	// Metrics is the observability registry (nil when the system runs
	// uninstrumented).
	Metrics *obs.Metrics
	// Auditor is the background SLA sweeper (nil when disabled).
	Auditor *obs.Auditor

	clock    timer.Clock
	runner   *timer.Runner
	state    []storage.Journal // one per shard
	dirs     []string          // per-shard data dirs (empty in memory)
	fs       fault.FS          // filesystem behind the journals/snapshots
	snapStop chan struct{}     // stops the time-based snapshot scheduler
	snapWG   sync.WaitGroup
}

// shardDir returns the on-disk home of one shard's state. A single
// shard keeps the pre-sharding layout (state/, snapshots/ directly
// under DataDir) so existing data dirs reopen unchanged.
func shardDir(dataDir string, shards, i int) string {
	if shards <= 1 {
		return dataDir
	}
	return filepath.Join(dataDir, fmt.Sprintf("shard-%04d", i))
}

// checkPartitionLayout rejects reopening partitioned on-disk state
// under a different partition count: data would silently vanish from
// queries (or new partitions would start empty) because the layout no
// longer matches the journals on disk. scanDir holds the partition
// subdirectories (<prefix>NNNN), legacy reports whether the
// unpartitioned layout is present, and noun/action name the subsystem
// in errors ("shard"/"resharding", "history stripe"/"re-striping").
func checkPartitionLayout(dataDir, scanDir, prefix string, want int, legacy bool, noun, action string) error {
	existing := 0
	if entries, err := os.ReadDir(scanDir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() && len(name) == len(prefix)+4 && strings.HasPrefix(name, prefix) {
				if _, err := strconv.Atoi(name[len(prefix):]); err == nil {
					existing++
				}
			}
		}
	}
	if want <= 1 {
		if existing > 0 {
			return fmt.Errorf("core: data dir %s holds %d-%s state; reopen it with the %s count it was created with", dataDir, existing, noun, noun)
		}
		return nil
	}
	if legacy {
		return fmt.Errorf("core: data dir %s holds single-%s state; %s an existing data dir is not supported", dataDir, noun, action)
	}
	if existing > 0 && existing != want {
		return fmt.Errorf("core: data dir %s was created with %d %ss, not %d; reopen it with the %s count it was created with", dataDir, existing, noun, want, noun)
	}
	return nil
}

// checkShardLayout guards the engine-shard layout (shard-NNNN dirs vs
// the legacy state/ dir directly under DataDir).
func checkShardLayout(dataDir string, shards int) error {
	legacy := false
	if _, err := os.Stat(filepath.Join(dataDir, "state")); err == nil {
		legacy = true
	}
	return checkPartitionLayout(dataDir, dataDir, "shard-", shards, legacy, "shard", "resharding")
}

// historyDir returns the on-disk home of one history stripe's journal.
// A single stripe keeps the pre-striping layout (history/ directly
// under DataDir) so existing data dirs reopen unchanged.
func historyDir(dataDir string, stripes, i int) string {
	if stripes <= 1 {
		return filepath.Join(dataDir, "history")
	}
	return filepath.Join(dataDir, "history", fmt.Sprintf("stripe-%04d", i))
}

// checkHistoryLayout guards the history-stripe layout (stripe-NNNN
// dirs vs legacy wal files directly under history/): stripes hash
// events by instance ID, so a different count would scatter an
// instance's history across journals that no longer match the layout.
func checkHistoryLayout(dataDir string, stripes int) error {
	histDir := filepath.Join(dataDir, "history")
	legacy := false
	if entries, err := os.ReadDir(histDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), "wal-") {
				legacy = true
			}
		}
	}
	return checkPartitionLayout(dataDir, histDir, "stripe-", stripes, legacy, "history stripe", "re-striping")
}

// Open assembles and (when DataDir is set) recovers a BPMS. With
// Shards > 1 every shard's journal is opened and replayed in parallel.
func Open(opts Options) (*BPMS, error) {
	if opts.Clock == nil {
		opts.Clock = timer.RealClock{}
	}
	if opts.Policy == nil {
		opts.Policy = resource.ShortestQueuePolicy{}
	}
	if opts.TimerTick <= 0 {
		opts.TimerTick = 10 * time.Millisecond
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	histStripes := opts.HistoryStripes
	if histStripes <= 0 {
		histStripes = 1
	}

	stateJournals := make([]storage.Journal, shards)
	snaps := make([]*storage.SnapshotStore, shards)
	histJournals := make([]storage.Journal, histStripes)
	closeAll := func() {
		for _, j := range stateJournals {
			if j != nil {
				j.Close()
			}
		}
		for _, j := range histJournals {
			if j != nil {
				j.Close()
			}
		}
	}
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("core: create data dir: %w", err)
		}
		if err := checkShardLayout(opts.DataDir, shards); err != nil {
			return nil, err
		}
		if err := checkHistoryLayout(opts.DataDir, histStripes); err != nil {
			return nil, err
		}
		jopts := storage.Options{
			SegmentSize:     opts.SegmentSize,
			Policy:          opts.SyncPolicy,
			SyncInterval:    opts.SyncInterval,
			BatchMaxDelay:   opts.BatchMaxDelay,
			BatchMaxRecords: opts.BatchMaxRecords,
			FS:              opts.FS,
		}
		for i := 0; i < shards; i++ {
			dir := shardDir(opts.DataDir, shards, i)
			jo := jopts
			jo.Metrics = opts.Metrics.WAL(fmt.Sprintf("state-%d", i))
			sj, err := storage.OpenFileJournal(filepath.Join(dir, "state"), jo)
			if err != nil {
				closeAll()
				return nil, err
			}
			stateJournals[i] = sj
			sn, err := storage.OpenSnapshotStoreFS(filepath.Join(dir, "snapshots"), 2, opts.FS)
			if err != nil {
				closeAll()
				return nil, err
			}
			snaps[i] = sn
		}
		for i := 0; i < histStripes; i++ {
			jo := jopts
			jo.Metrics = opts.Metrics.WAL(fmt.Sprintf("history-%d", i))
			hj, err := storage.OpenFileJournal(historyDir(opts.DataDir, histStripes, i), jo)
			if err != nil {
				closeAll()
				return nil, err
			}
			histJournals[i] = hj
		}
	} else {
		for i := range stateJournals {
			stateJournals[i] = storage.NewMemJournal()
		}
		for i := range histJournals {
			histJournals[i] = storage.NewMemJournal()
		}
	}

	hist, err := history.NewStriped(histJournals, history.StoreOptions{
		Window:  opts.HistoryWindow,
		Metrics: opts.Metrics,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	// Past this point the store owns the history journals: failures
	// must stop its committer goroutines and close the journals
	// through it, not out from under it.
	closeAll = func() {
		for _, j := range stateJournals {
			if j != nil {
				j.Close()
			}
		}
		hist.Close()
	}
	dir := resource.NewDirectory()
	for i := range opts.Users {
		dir.AddUser(&opts.Users[i])
	}
	tasks := task.NewService(task.Config{
		Directory:    dir,
		Policy:       opts.Policy,
		AutoAllocate: opts.AutoAllocate,
		Now:          opts.Clock.Now,
		Stripes:      opts.WorklistStripes,
		DefaultSLA:   opts.TaskSLA,
		Metrics:      opts.Metrics.Tasks(),
	})
	var wheel timer.Service
	if opts.TimerStripes == 1 {
		wheel = timer.NewWheelService(opts.TimerTick, 512)
	} else {
		wheel = timer.NewStripedWheel(opts.TimerStripes, opts.TimerTick, 512)
	}
	if opts.Metrics != nil {
		if fl, ok := wheel.(timer.FireLagObserver); ok {
			fl.SetFireLag(opts.Metrics.Timers().FireLag)
		}
	}
	onDegrade := opts.OnDegrade
	router, err := shard.New(shard.Config{
		Journals:        stateJournals,
		Snapshots:       snaps,
		SnapshotEvery:   opts.SnapshotEvery,
		RecoveryWorkers: opts.RecoveryWorkers,
		Durable:         opts.Durable,
		Tasks:           tasks,
		Timers:          wheel,
		Clock:           opts.Clock,
		History:         hist,
		Metrics:         opts.Metrics,
		OnDegrade: func(i int, reason string) {
			log.Printf("core: shard %d fail-stopped (read-only degraded mode): %s", i, reason)
			if onDegrade != nil {
				onDegrade(i, reason)
			}
		},
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	shardDirs := make([]string, 0, shards)
	if opts.DataDir != "" {
		for i := 0; i < shards; i++ {
			shardDirs = append(shardDirs, shardDir(opts.DataDir, shards, i))
		}
	}
	b := &BPMS{
		Engine:    router,
		Tasks:     tasks,
		Directory: dir,
		History:   hist,
		Timers:    wheel,
		Metrics:   opts.Metrics,
		clock:     opts.Clock,
		state:     stateJournals,
		dirs:      shardDirs,
		fs:        opts.FS,
	}
	if opts.Metrics != nil {
		b.registerSamplers(opts.Metrics)
		// Decision tables are compiled ad hoc (script tasks, API
		// callers), not owned by core, so their instruments attach
		// through the package-level hook.
		rules.SetMetrics(opts.Metrics)
	}
	if opts.AuditInterval > 0 {
		b.Auditor = obs.NewAuditor(b.auditorConfig(opts))
		b.Auditor.Start()
	}
	if opts.RunTimers {
		b.runner = timer.NewRunner(wheel, opts.Clock, opts.TimerTick)
		b.runner.Start()
	}
	if opts.SnapshotInterval > 0 && opts.DataDir != "" {
		b.snapStop = make(chan struct{})
		b.snapWG.Add(1)
		go func() {
			defer b.snapWG.Done()
			t := time.NewTicker(opts.SnapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-b.snapStop:
					return
				case <-t.C:
					// Shards whose journal is idle or already
					// snapshotting skip the tick.
					b.Engine.TrySnapshot()
				}
			}
		}()
	}
	return b, nil
}

// registerSamplers wires the scrape-time gauges: values read from
// subsystem state on each /metrics scrape instead of being maintained
// on the hot paths.
func (b *BPMS) registerSamplers(m *obs.Metrics) {
	tm := m.Tasks()
	tim := m.Timers()
	m.AddSampler(func() {
		for state, n := range b.Tasks.Stats().ByState {
			tm.Items(state).Set(int64(n))
		}
		tim.Pending.Set(int64(b.Timers.Pending()))
		for _, s := range b.Engine.Stats() {
			m.ShardInstances(s.Shard).Set(int64(s.Instances))
			degraded := int64(0)
			if s.Degraded {
				degraded = 1
			}
			m.ShardDegraded(s.Shard).Set(degraded)
		}
	})
}

// auditorConfig adapts the worklist due-time heap, the timer wheel,
// the verifier, and the history pipeline into the obs.Auditor's sweep
// closures.
func (b *BPMS) auditorConfig(opts Options) obs.AuditorConfig {
	return obs.AuditorConfig{
		Interval: opts.AuditInterval,
		Now:      opts.Clock.Now,
		Metrics:  opts.Metrics,
		Overdue: func(now time.Time) []obs.Violation {
			items := b.Tasks.Overdue(now)
			out := make([]obs.Violation, 0, len(items))
			for _, it := range items {
				out = append(out, obs.Violation{
					Kind:       obs.KindTaskOverdue,
					ID:         it.ID,
					InstanceID: it.InstanceID,
					ProcessID:  it.ProcessID,
					Detail: fmt.Sprintf("work item %s (%s, state %s) open past its due time %s",
						it.ID, it.Name, it.State, it.DueAt.Format(time.RFC3339)),
					Since: it.DueAt,
				})
			}
			return out
		},
		TimerLag: func(horizon time.Time) []obs.Violation {
			rep, ok := b.Timers.(timer.OverdueReporter)
			if !ok {
				return nil
			}
			lagging := rep.Overdue(horizon)
			out := make([]obs.Violation, 0, len(lagging))
			for _, o := range lagging {
				out = append(out, obs.Violation{
					Kind:   obs.KindTimerLag,
					ID:     fmt.Sprintf("timer-%d", o.ID),
					Detail: fmt.Sprintf("timer %d still pending past %s", o.ID, o.At.Format(time.RFC3339)),
					Since:  o.At,
				})
			}
			return out
		},
		CheckDefinitions: func() []obs.Violation {
			var out []obs.Violation
			for _, id := range b.Engine.Definitions() {
				p, ok := b.Engine.Definition(id)
				if !ok {
					continue
				}
				res, err := verify.Check(p, verify.Options{MaxStates: 50000, UseReduction: true})
				now := b.clock.Now()
				switch {
				case err != nil:
					out = append(out, obs.Violation{
						Kind: obs.KindDefinitionUnsound, ID: id, ProcessID: id,
						Detail: fmt.Sprintf("soundness re-verification failed: %v", err),
						Since:  now,
					})
				case !res.Sound:
					detail := "definition is not sound"
					if len(res.Violations) > 0 {
						detail = res.Violations[0]
					}
					out = append(out, obs.Violation{
						Kind: obs.KindDefinitionUnsound, ID: id, ProcessID: id,
						Detail: detail, Since: now,
					})
				}
			}
			return out
		},
		Emit: func(v obs.Violation) {
			ev := &history.Event{
				Type:       history.SLAViolation,
				Time:       v.Detected,
				ProcessID:  v.ProcessID,
				InstanceID: v.InstanceID,
				Data: map[string]any{
					"kind":   v.Kind,
					"object": v.ID,
					"detail": v.Detail,
					"since":  v.Since,
				},
			}
			if v.Kind == obs.KindTaskOverdue {
				ev.TaskID = v.ID
			}
			b.History.Enqueue(ev)
		},
	}
}

// Close stops the auditor and timer runner, drains the history
// pipeline, and syncs/closes every journal (all shard WALs plus the
// history stripe journals). Under SyncBatch journals this drains
// in-flight commit batches: every acknowledged append is on stable
// storage when Close returns.
func (b *BPMS) Close() error {
	if b.Auditor != nil {
		b.Auditor.Stop()
	}
	if b.snapStop != nil {
		close(b.snapStop)
		b.snapWG.Wait()
		b.snapStop = nil
	}
	if b.runner != nil {
		b.runner.Stop()
	}
	var first error
	for _, j := range b.state {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := b.History.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// SyncJournals forces every journal to stable storage (without
// closing them). The history store drains its async pipeline first,
// so every audit event enqueued before the call is durable on return.
func (b *BPMS) SyncJournals() error {
	var first error
	for _, j := range b.state {
		if err := j.Sync(); err != nil && first == nil {
			first = err
		}
	}
	if err := b.History.Flush(); err != nil && first == nil {
		first = err
	}
	return first
}

// JournalIndexes reports the state journals' last appended and last
// synced record indices, summed across shards (for shutdown summaries
// and monitoring; with one shard these are the state journal's
// indices). Both remain readable after Close.
func (b *BPMS) JournalIndexes() (last, synced uint64) {
	for _, j := range b.state {
		last += j.LastIndex()
		synced += j.SyncedIndex()
	}
	return last, synced
}

// ShardStat describes one shard's load plus its journal position,
// boot-time recovery cost, and on-disk footprint.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Instances is the number of process instances on the shard.
	Instances int `json:"instances"`
	// JournalLast is the shard WAL's last appended record index.
	JournalLast uint64 `json:"journalLast"`
	// JournalSynced is the shard WAL's last durably synced index.
	JournalSynced uint64 `json:"journalSynced"`
	// RecoverySeconds is how long this shard's boot-time recovery
	// (snapshot load + journal replay) took; 0 when it started fresh.
	RecoverySeconds float64 `json:"recoverySeconds"`
	// DiskBytes is the shard's on-disk footprint (WAL segments plus
	// snapshots); 0 when running in memory.
	DiskBytes int64 `json:"diskBytes"`
	// Degraded reports a fail-stopped shard serving reads only.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason is the storage error that froze the shard.
	DegradedReason string `json:"degradedReason,omitempty"`
}

// dirSize sums the sizes of all regular files under root (0 when the
// directory does not exist).
func dirSize(root string) int64 {
	var n int64
	_ = filepath.WalkDir(root, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			n += info.Size()
		}
		return nil
	})
	return n
}

// ShardStats reports per-shard instance counts, journal positions,
// recovery durations, and on-disk footprints.
func (b *BPMS) ShardStats() []ShardStat {
	stats := b.Engine.Stats()
	out := make([]ShardStat, len(stats))
	for i, s := range stats {
		out[i] = ShardStat{
			Shard:           s.Shard,
			Instances:       s.Instances,
			JournalLast:     b.state[i].LastIndex(),
			JournalSynced:   b.state[i].SyncedIndex(),
			RecoverySeconds: b.Engine.RecoveryDuration(i).Seconds(),
			Degraded:        s.Degraded,
			DegradedReason:  s.DegradedReason,
		}
		if i < len(b.dirs) {
			out[i].DiskBytes = dirSize(b.dirs[i])
		}
	}
	return out
}

// Ready reports whether the system can serve its full surface: every
// shard has finished boot replay (guaranteed once Open returns) and no
// shard has fail-stopped. /readyz gates on it.
func (b *BPMS) Ready() (bool, []int) {
	degraded := b.Engine.DegradedShards()
	return len(degraded) == 0, degraded
}

// FaultReport returns the injected-fault tally when the system was
// opened over a fault.Injector (bpmsd -fault); ok is false on the real
// filesystem.
func (b *BPMS) FaultReport() (fault.Report, bool) {
	if rep, ok := b.fs.(fault.Reporter); ok {
		return rep.FaultReport(), true
	}
	return fault.Report{}, false
}

// DeployFile loads a definition from a .json or .xml file, validates
// it, and deploys it.
func (b *BPMS) DeployFile(path string) (*model.Process, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p *model.Process
	switch filepath.Ext(path) {
	case ".json":
		p, err = model.DecodeJSON(data)
	case ".xml", ".bpmn":
		p, err = model.DecodeXML(data)
	default:
		return nil, fmt.Errorf("core: unknown definition format %q", filepath.Ext(path))
	}
	if err != nil {
		return nil, err
	}
	if err := b.Engine.Deploy(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Log exports the audit trail as a mining log (one trace per case).
func (b *BPMS) Log() *history.Log {
	return history.FromEvents(b.History, false)
}

// AddUser registers a user in the organisational directory.
func (b *BPMS) AddUser(id string, roles ...string) {
	b.Directory.AddUser(&resource.User{ID: id, Roles: roles})
}

// Now returns the system clock time.
func (b *BPMS) Now() time.Time { return b.clock.Now() }
