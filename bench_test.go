// Benchmarks mirroring the experiment suite (DESIGN.md §3): one
// Benchmark function (or group) per table/figure, built on the same
// workloads as cmd/bpmsbench. Run with:
//
//	go test -bench=. -benchmem
package bpms_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"bpms"
	"bpms/internal/bench"
	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/mine"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/rules"
	"bpms/internal/sim"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/timer"
	"bpms/internal/verify"
)

func newBenchEngine(b *testing.B, procs ...*model.Process) *engine.Engine {
	b.Helper()
	e, err := engine.New(engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	for _, p := range procs {
		if err := e.Deploy(p); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// T1: engine throughput by topology — one sub-benchmark per topology.

func benchCases(b *testing.B, proc *model.Process, vars map[string]any) {
	e := newBenchEngine(b, proc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := e.StartInstance(proc.ID, vars)
		if err != nil {
			b.Fatal(err)
		}
		if v.Status != engine.StatusCompleted {
			b.Fatalf("status %s", v.Status)
		}
	}
}

func BenchmarkT1_Sequence10(b *testing.B) { benchCases(b, model.Sequence(10), nil) }
func BenchmarkT1_Parallel5(b *testing.B)  { benchCases(b, model.Parallel(5), nil) }
func BenchmarkT1_Choice8(b *testing.B) {
	benchCases(b, model.Choice(8), map[string]any{"branch": 3})
}
func BenchmarkT1_Loop5(b *testing.B) {
	benchCases(b, model.Loop(), map[string]any{"limit": 5, "count": 0})
}
func BenchmarkT1_Mixed(b *testing.B) {
	benchCases(b, model.Mixed(), map[string]any{"amount": 80})
}

// T2: work-item lifecycle.

func BenchmarkT2_TaskLifecycle(b *testing.B) {
	dir := resource.NewDirectory()
	dir.AddUser(&resource.User{ID: "u1", Roles: []string{"r"}})
	svc := task.NewService(task.Config{Directory: dir})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := svc.Create(task.Spec{InstanceID: "i", ElementID: "e", Role: "r"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Claim(it.ID, "u1"); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Start(it.ID, "u1"); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Complete(it.ID, "u1", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// F1: concurrent clients.

func BenchmarkF1_ParallelClients(b *testing.B) {
	e := newBenchEngine(b, model.Mixed())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.StartInstance("mixed", map[string]any{"amount": 80}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// T3: soundness verification, with and without reduction.

func BenchmarkT3_VerifyReduced50(b *testing.B) {
	p := model.RandomStructured(50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Check(p, verify.Options{UseReduction: true, MaxStates: 2000000})
		if err != nil || !res.Sound {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

func BenchmarkT3_VerifyDirect25(b *testing.B) {
	p := model.RandomStructured(25, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Check(p, verify.Options{UseReduction: false, MaxStates: 2000000})
		if err != nil || !res.Sound {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// T4: journal append and replay.

func BenchmarkT4_Append256B(b *testing.B) {
	j, err := storage.OpenFileJournal(b.TempDir(), storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT4_Replay(b *testing.B) {
	dir := b.TempDir()
	j, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	const records = 10000
	for i := 0; i < records; i++ {
		j.Append(payload)
	}
	j.Sync()
	b.SetBytes(256 * records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := j.Replay(1, func(uint64, []byte) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != records {
			b.Fatalf("replayed %d", count)
		}
	}
	b.StopTimer()
	j.Close()
}

// T10: group-commit durable appends. Durable throughput under
// parallelism is the group-commit win: batch coalesces concurrent
// AppendDurable calls behind one fsync, while always pays one fsync
// per append.

func benchAppend(b *testing.B, opts storage.Options, durable bool) {
	j, err := storage.OpenFileJournal(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var err error
			if durable {
				_, err = j.AppendDurable(payload)
			} else {
				_, err = j.Append(payload)
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkT10_AppendDurableBatch(b *testing.B) {
	benchAppend(b, storage.Options{Policy: storage.SyncBatch}, true)
}

func BenchmarkT10_AppendSyncAlways(b *testing.B) {
	benchAppend(b, storage.Options{Policy: storage.SyncAlways}, false)
}

func BenchmarkT10_AppendSyncEvery256(b *testing.B) {
	benchAppend(b, storage.Options{Policy: storage.SyncEvery, SyncInterval: 256}, false)
}

// T11: sharded runtime. Durable StartInstance throughput under
// parallel clients against the shard count: every start blocks on its
// owner shard's group-commit ack, so N shards commit through N
// independent WAL pipelines.

func benchShardedStart(b *testing.B, shards int) {
	sys, err := bpms.Open(bpms.Options{
		DataDir:    b.TempDir(),
		Shards:     shards,
		SyncPolicy: bpms.SyncBatch,
		Durable:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.Engine.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	proc := model.Sequence(3)
	if err := sys.Engine.Deploy(proc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Engine.StartInstance(proc.ID, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkT11_DurableStart1Shard(b *testing.B) { benchShardedStart(b, 1) }
func BenchmarkT11_DurableStart2Shard(b *testing.B) { benchShardedStart(b, 2) }
func BenchmarkT11_DurableStart4Shard(b *testing.B) { benchShardedStart(b, 4) }

// T12: audit/history pipeline. Transition cost with history recording
// on vs off: the async striped store turns the per-transition audit
// work (JSON encode + journal append under a global lock) into a
// channel hand-off drained by per-stripe committers, so AuditOn should
// approach AuditOff. AuditOnSync is the seed-style write-through path
// kept as the baseline. History journals are real files; the state
// journal is in-memory so the audit path is the only difference.

func benchAudit(b *testing.B, mkHist func(b *testing.B) *history.Store) {
	var hist *history.Store
	if mkHist != nil {
		hist = mkHist(b)
		defer hist.Close()
	}
	e, err := engine.New(engine.Config{History: hist})
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) {
		return nil, nil
	})
	proc := model.Sequence(10)
	if err := e.Deploy(proc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := e.StartInstance(proc.ID, nil)
		if err != nil {
			b.Fatal(err)
		}
		if v.Status != engine.StatusCompleted {
			b.Fatalf("status %s", v.Status)
		}
	}
	if hist != nil {
		// Drain the pipeline inside the measured window so the async
		// variant cannot hide unfinished work.
		if err := hist.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

func histStore(b *testing.B, stripes int, sync bool) *history.Store {
	b.Helper()
	dir := b.TempDir()
	js := make([]storage.Journal, stripes)
	for i := range js {
		j, err := storage.OpenFileJournal(fmt.Sprintf("%s/stripe-%04d", dir, i), storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		js[i] = j
	}
	// The bounded window is the production default (bpmsd ships with
	// -history-window 100000); it also keeps the benchmark's live set
	// flat so GC cost reflects steady state, not unbounded growth.
	s, err := history.NewStriped(js, history.StoreOptions{Sync: sync, Window: 10000})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkT12_AuditOff(b *testing.B) { benchAudit(b, nil) }

func BenchmarkT12_AuditOnSync(b *testing.B) {
	benchAudit(b, func(b *testing.B) *history.Store { return histStore(b, 1, true) })
}

func BenchmarkT12_AuditOn(b *testing.B) {
	benchAudit(b, func(b *testing.B) *history.Store { return histStore(b, 1, false) })
}

func BenchmarkT12_AuditOn4Stripes(b *testing.B) {
	benchAudit(b, func(b *testing.B) *history.Store { return histStore(b, 4, false) })
}

// BenchmarkT12_EventEncode isolates the audit-path encoding: the
// append-style encoder into a reused buffer vs json.Marshal per event.

func BenchmarkT12_EventEncode(b *testing.B) {
	e := &history.Event{
		Type: history.ElementCompleted, Time: time.Now(),
		ProcessID: "order", InstanceID: "order-12345", ElementID: "approve",
		Element: "Approve order", Actor: "alice",
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := history.AppendEncode(buf[:0], e)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

func BenchmarkT12_EventEncodeJSON(b *testing.B) {
	e := &history.Event{
		Type: history.ElementCompleted, Time: time.Now(),
		ProcessID: "order", InstanceID: "order-12345", ElementID: "approve",
		Element: "Approve order", Actor: "alice",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(e); err != nil {
			b.Fatal(err)
		}
	}
}

// T13: striped worklist. Mixed read/write throughput under parallel
// clients against the stripe count: every iteration runs a full
// auto-allocated work-item lifecycle (create → start → complete), and
// every eighth iteration additionally polls the read side (per-user
// Worklist plus the indexed deadline query Overdue against a standing
// pool of open overdue items). With one stripe all operations
// serialize on a single mutex — the seed behaviour — while N stripes
// admit parallel claims/completions and index-backed queries.

func benchWorklistMixed(b *testing.B, stripes int) {
	const users = 16
	dir := resource.NewDirectory()
	for i := 0; i < users; i++ {
		dir.AddUser(&resource.User{ID: fmt.Sprintf("u%02d", i), Roles: []string{"crew"}})
	}
	svc := task.NewService(task.Config{Directory: dir, AutoAllocate: true, Stripes: stripes})
	// Standing overdue pool: Overdue must walk the due-time index, not
	// the ever-growing item map.
	for i := 0; i < 200; i++ {
		if _, err := svc.Create(task.Spec{
			InstanceID: "seed", ElementID: "late",
			Assignee: fmt.Sprintf("late%02d", i%8), Due: time.Nanosecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			it, err := svc.Create(task.Spec{InstanceID: "i", ElementID: "e", Role: "crew"})
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := svc.Start(it.ID, it.Assignee); err != nil {
				b.Error(err)
				return
			}
			if _, err := svc.Complete(it.ID, it.Assignee, nil); err != nil {
				b.Error(err)
				return
			}
			if n%8 == 0 {
				user := fmt.Sprintf("u%02d", n%users)
				svc.Worklist(user)
				if len(svc.Overdue(time.Now())) < 200 {
					b.Error("overdue pool missing")
					return
				}
			}
		}
	})
}

func BenchmarkT13_WorklistMixed1Stripe(b *testing.B)  { benchWorklistMixed(b, 1) }
func BenchmarkT13_WorklistMixed4Stripes(b *testing.B) { benchWorklistMixed(b, 4) }
func BenchmarkT13_WorklistMixed8Stripes(b *testing.B) { benchWorklistMixed(b, 8) }

// BenchmarkT13_Overdue isolates the deadline query: 100k items ever
// created, 200 of them open and overdue. The due-time min-heap answers
// in O(overdue · log pending); the seed scanned all 100k.

func BenchmarkT13_Overdue(b *testing.B) {
	svc := task.NewService(task.Config{Stripes: 4})
	for i := 0; i < 100000; i++ {
		it, err := svc.Create(task.Spec{InstanceID: "i", ElementID: "e", Assignee: "u"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Start(it.ID, "u"); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Complete(it.ID, "u", nil); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := svc.Create(task.Spec{
			InstanceID: "i", ElementID: "late", Assignee: "u", Due: time.Nanosecond,
		}); err != nil {
			b.Fatal(err)
		}
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := svc.Overdue(now); len(got) != 200 {
			b.Fatalf("overdue = %d", len(got))
		}
	}
}

// F2: allocation-policy simulation (one 100-case run per iteration).

func benchPolicy(b *testing.B, pol resource.Policy) {
	proc := model.New("mmc").
		Start("s").UserTask("serve", model.Role("agent")).End("e").
		Seq("s", "serve", "e").MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Process:        proc,
			Cases:          100,
			Interarrival:   sim.Exp(25 * time.Second),
			DefaultService: sim.Exp(80 * time.Second),
			Resources:      map[string][]string{"agent": {"w1", "w2", "w3", "w4"}},
			Policy:         pol,
			Seed:           int64(i),
		})
		if err != nil || res.Completed != 100 {
			b.Fatalf("completed=%d err=%v", res.Completed, err)
		}
	}
}

func BenchmarkF2_SimRandomPolicy(b *testing.B)  { benchPolicy(b, resource.NewRandomPolicy(1)) }
func BenchmarkF2_SimShortestQueue(b *testing.B) { benchPolicy(b, resource.ShortestQueuePolicy{}) }

// T5: expression evaluation.

func BenchmarkT5_ExprComparison(b *testing.B) {
	p := expr.MustCompile(`amount > 1000 && region == "EU"`)
	env := expr.MapEnv{"amount": expr.Int(1500), "region": expr.String("EU")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT5_ExprAggregate(b *testing.B) {
	p := expr.MustCompile(`len(items) + sum(items)`)
	env := expr.MapEnv{"items": expr.List(expr.Int(1), expr.Int(2), expr.Int(3))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// T9: deploy-time expression compilation — compile-once vs the
// compile-per-evaluation pattern, micro and engine-level.

// BenchmarkT9_ConditionHeavy20 drives a 20-choice condition-heavy
// process (bench.ConditionHeavy) through the engine; with deploy-time
// compilation no expression is parsed after Deploy.
func BenchmarkT9_ConditionHeavy20(b *testing.B) {
	// amount 600 drives acc past 1000 by the second choice, so most
	// guards take the two-output "hot" branch: the workload is
	// dominated by condition and output-mapping evaluation.
	benchCases(b, bench.ConditionHeavy(20), map[string]any{"amount": 600})
}

// BenchmarkT9_ExprCompilePerEval is the seed engine's per-evaluation
// behavior (lex + parse + eval every time), kept as the baseline the
// compilation pipeline is measured against.
func BenchmarkT9_ExprCompilePerEval(b *testing.B) {
	env := expr.MapEnv{"amount": expr.Int(1500), "region": expr.String("EU")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := expr.Compile(`amount > 1000 && region == "EU"`)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// F3: discovery (mining a 100-trace log per iteration).

func BenchmarkF3_AlphaMiner(b *testing.B) {
	log := bench.DiscoveryLog(100, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mine.Alpha(log)
		if res.Net.Transitions() == 0 {
			b.Fatal("empty net")
		}
	}
}

func BenchmarkF3_TokenReplay(b *testing.B) {
	log := bench.DiscoveryLog(100, 3)
	res := mine.Alpha(log)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mine.TokenReplay(res, log)
		if c.Fitness() <= 0 {
			b.Fatal("zero fitness")
		}
	}
}

// T6: message correlation with 1000 parked instances.

func BenchmarkT6_Correlate(b *testing.B) {
	proc := model.New("waiter").
		Start("s").MessageCatch("w", "evt", model.CorrelationKey("k")).End("e").
		Seq("s", "w", "e").MustBuild()
	e := newBenchEngine(b, proc)
	// Keep a standing pool of 1000 waiting instances.
	for i := 0; i < 1000; i++ {
		if _, err := e.StartInstance("waiter", map[string]any{"k": fmt.Sprintf("pool%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("bench%d", i)
		if _, err := e.StartInstance("waiter", map[string]any{"k": key}); err != nil {
			b.Fatal(err)
		}
		n, _, err := e.Publish("evt", key, nil)
		if err != nil || n != 1 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

// F4: timer services.

func benchTimers(b *testing.B, svc timer.Service) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := rand.New(rand.NewSource(1))
	fired := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Schedule(base.Add(time.Duration(r.Intn(10000))*time.Millisecond), func() { fired++ })
	}
	svc.AdvanceTo(base.Add(time.Hour))
	b.StopTimer()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

func BenchmarkF4_TimingWheel(b *testing.B) {
	benchTimers(b, timer.NewWheelService(time.Millisecond, 512))
}

func BenchmarkF4_TimerHeap(b *testing.B) {
	benchTimers(b, timer.NewHeapService())
}

// T7: decision tables.

func benchRules(b *testing.B, n int) {
	tbl := rules.Table{Name: "bench", HitPolicy: rules.First, Outputs: []string{"out"}}
	for i := 0; i < n; i++ {
		tbl.Rules = append(tbl.Rules, rules.Rule{
			Conditions: []string{fmt.Sprintf("v == %d", i)},
			Outputs:    map[string]string{"out": fmt.Sprint(i)},
		})
	}
	c := rules.MustCompile(tbl)
	env := expr.MapEnv{"v": expr.Int(int64(n - 1))} // worst case: last rule
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT7_Rules10(b *testing.B)    { benchRules(b, 10) }
func BenchmarkT7_Rules100(b *testing.B)   { benchRules(b, 100) }
func BenchmarkT7_Rules1000(b *testing.B)  { benchRules(b, 1000) }
func BenchmarkT7_Rules10000(b *testing.B) { benchRules(b, 10000) }

// T15: indexed decision tables — column index vs the linear scan on
// the same compiled table, worst-case last-match equality workload.

func t15Table(n int) (*rules.Compiled, expr.MapEnv) {
	tbl := rules.Table{Name: "t15", HitPolicy: rules.First, Outputs: []string{"out"}}
	for i := 0; i < n; i++ {
		tbl.Rules = append(tbl.Rules, rules.Rule{
			Conditions: []string{fmt.Sprintf("v == %d", i)},
			Outputs:    map[string]string{"out": fmt.Sprint(i)},
		})
	}
	return rules.MustCompile(tbl), expr.MapEnv{"v": expr.Int(int64(n - 1))}
}

func benchT15Indexed(b *testing.B, n int) {
	c, env := t15Table(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func benchT15Linear(b *testing.B, n int) {
	c, env := t15Table(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EvalLinear(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT15_Indexed100(b *testing.B)   { benchT15Indexed(b, 100) }
func BenchmarkT15_Indexed1000(b *testing.B)  { benchT15Indexed(b, 1000) }
func BenchmarkT15_Indexed10000(b *testing.B) { benchT15Indexed(b, 10000) }
func BenchmarkT15_Linear100(b *testing.B)    { benchT15Linear(b, 100) }
func BenchmarkT15_Linear1000(b *testing.B)   { benchT15Linear(b, 1000) }
func BenchmarkT15_Linear10000(b *testing.B)  { benchT15Linear(b, 10000) }

func BenchmarkT15_Batch10000(b *testing.B) {
	c, env := t15Table(10000)
	envs := make([]expr.Env, 64)
	for i := range envs {
		envs[i] = env
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(envs) {
		_, errs := c.EvalBatch(envs)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// F5: recovery (rebuild an engine from a 500-instance journal).

func BenchmarkF5_Recovery(b *testing.B) {
	dir := b.TempDir()
	j, err := storage.OpenFileJournal(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(engine.Config{Journal: j})
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) { return nil, nil })
	if err := e.Deploy(model.Sequence(5)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := e.StartInstance("seq-5", nil); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j2, err := storage.OpenFileJournal(dir, storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		e2, err := engine.New(engine.Config{Journal: j2})
		if err != nil {
			b.Fatal(err)
		}
		if len(e2.Instances()) != 500 {
			b.Fatalf("recovered %d", len(e2.Instances()))
		}
		j2.Close()
	}
}

// T16: storage lifecycle — cold start from snapshot + journal suffix,
// seed path (single-blob snapshot, serial replay) vs the streaming
// chunked snapshot decoded by parallel workers, and the snapshot write
// itself (blob marshals the whole image; streaming appends one bounded
// record per definition/instance).

func buildT16BenchFixture(b *testing.B, dir string, blob bool) {
	b.Helper()
	j, err := storage.OpenFileJournal(dir+"/state", storage.Options{SegmentSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	sn, err := storage.OpenSnapshotStore(dir+"/snapshots", 2)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(engine.Config{Journal: j, Snapshots: sn, BlobSnapshots: blob})
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) { return nil, nil })
	if err := e.Deploy(model.Sequence(3)); err != nil {
		b.Fatal(err)
	}
	const inSnapshot, suffix = 2000, 500
	for i := 0; i < inSnapshot; i++ {
		if _, err := e.StartInstance("seq-3", map[string]any{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Snapshot(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < suffix; i++ {
		if _, err := e.StartInstance("seq-3", map[string]any{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
}

func benchT16ColdStart(b *testing.B, blob bool, workers int) {
	dir := b.TempDir()
	buildT16BenchFixture(b, dir, blob)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := storage.OpenFileJournal(dir+"/state", storage.Options{SegmentSize: 64 << 10})
		if err != nil {
			b.Fatal(err)
		}
		sn, err := storage.OpenSnapshotStore(dir+"/snapshots", 2)
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.New(engine.Config{
			Journal: j, Snapshots: sn, RecoveryWorkers: workers, BlobSnapshots: blob,
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(e.Instances()); got != 2500 {
			b.Fatalf("recovered %d", got)
		}
		j.Close()
	}
}

func BenchmarkT16_ColdStartBlobSerial(b *testing.B)        { benchT16ColdStart(b, true, 1) }
func BenchmarkT16_ColdStartStreamingParallel(b *testing.B) { benchT16ColdStart(b, false, 0) }

func benchT16Snapshot(b *testing.B, blob bool) {
	dir := b.TempDir()
	j, err := storage.OpenFileJournal(dir+"/state", storage.Options{SegmentSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	sn, err := storage.OpenSnapshotStore(dir+"/snapshots", 2)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(engine.Config{Journal: j, Snapshots: sn, BlobSnapshots: blob})
	if err != nil {
		b.Fatal(err)
	}
	e.RegisterHandler(model.NoopHandler, func(engine.TaskContext) (map[string]expr.Value, error) { return nil, nil })
	if err := e.Deploy(model.Sequence(3)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := e.StartInstance("seq-3", map[string]any{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT16_SnapshotBlob(b *testing.B)      { benchT16Snapshot(b, true) }
func BenchmarkT16_SnapshotStreaming(b *testing.B) { benchT16Snapshot(b, false) }

// T8: end-to-end simulated loan process (100 cases per iteration).

func BenchmarkT8_LoanSimulation(b *testing.B) {
	proc := model.New("loan-bench").
		Start("s").
		UserTask("register", model.Role("clerk")).
		XOR("route", model.Default("small")).
		UserTask("assess", model.Role("assessor")).
		UserTask("fastTrack", model.Role("clerk")).
		XOR("m").
		UserTask("payout", model.Role("clerk")).
		End("e").
		Flow("s", "register").
		Flow("register", "route").
		FlowIf("route", "assess", "amount > 5000").
		FlowID("small", "route", "fastTrack", "").
		Flow("assess", "m").
		Flow("fastTrack", "m").
		Flow("m", "payout").
		Flow("payout", "e").
		MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Process:        proc,
			Cases:          100,
			Interarrival:   sim.Exp(10 * time.Minute),
			DefaultService: sim.Lognormal{M: 10 * time.Minute, Shape: 0.5},
			Resources: map[string][]string{
				"clerk":    {"c1", "c2", "c3"},
				"assessor": {"a1", "a2"},
			},
			Vars: func(n int, r *rand.Rand) map[string]any {
				return map[string]any{"amount": 1000 + r.Intn(9000)}
			},
			Seed: int64(i),
		})
		if err != nil || res.Completed != 100 {
			b.Fatalf("completed=%d err=%v", res.Completed, err)
		}
	}
}
