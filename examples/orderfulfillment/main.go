// Order fulfilment: parallel gateways, multi-instance picking, and
// message correlation between two deployed processes (the order waits
// for a payment message thrown by a separate payment process).
package main

import (
	"fmt"
	"log"

	"bpms"
)

func main() {
	sys, err := bpms.Open(bpms.Options{AutoAllocate: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	sys.AddUser("pat", "picker")

	sys.Engine.RegisterHandler("stock.reserve", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		return map[string]bpms.Value{"reserved": bpms.BoolValue(true)}, nil
	})
	sys.Engine.RegisterHandler("ship.dispatch", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		return map[string]bpms.Value{"shipped": bpms.BoolValue(true)}, nil
	})

	// The order process: after checkout, reserve stock and wait for
	// payment in parallel; then pick every line item (multi-instance
	// human tasks) and dispatch.
	order := bpms.NewProcess("order-fulfilment").
		Start("checkout").
		AND("fork").
		ServiceTask("reserve", "stock.reserve").
		MessageCatch("awaitPayment", "payment.confirmed", bpms.CorrelationKey("orderId")).
		AND("join").
		UserTask("pick", bpms.Name("Pick item"), bpms.Role("picker"),
			bpms.MultiParallel("items", "item"),
			bpms.Output("picked", "coalesce(picked, 0) + 1")).
		ServiceTask("dispatch", "ship.dispatch").
		End("done").
		Flow("checkout", "fork").
		Flow("fork", "reserve").
		Flow("fork", "awaitPayment").
		Flow("reserve", "join").
		Flow("awaitPayment", "join").
		Flow("join", "pick").
		Flow("pick", "dispatch").
		Flow("dispatch", "done").
		MustBuild()

	// The payment process: a send task throws the confirmation that
	// the order process is waiting for.
	payment := bpms.NewProcess("payment").
		Start("received").
		ScriptTask("book", bpms.Output("booked", "true")).
		SendTask("confirm", "payment.confirmed", bpms.CorrelationKey("orderId")).
		End("done").
		Seq("received", "book", "confirm", "done").
		MustBuild()

	for _, p := range []*bpms.Process{order, payment} {
		if res, err := bpms.Verify(p); err != nil || !res.Sound {
			log.Fatalf("%s not sound: %v %v", p.ID, err, res)
		}
		if err := sys.Engine.Deploy(p); err != nil {
			log.Fatal(err)
		}
	}

	// Start an order with three line items.
	inst, err := sys.Engine.StartInstance("order-fulfilment", map[string]any{
		"orderId": "O-1001",
		"items":   []any{"keyboard", "mouse", "cable"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order %s: %s (stock reserved, waiting for payment)\n", inst.ID, inst.Status)

	// A separate payment case pays order O-1001 — its send task
	// correlates into the waiting order.
	pay, _ := sys.Engine.StartInstance("payment", map[string]any{"orderId": "O-1001", "amount": 129.90})
	fmt.Printf("payment %s: %s\n", pay.ID, pay.Status)

	// Payment arrived; the AND join released; three pick tasks exist.
	wl := sys.Tasks.Worklist("pat")
	fmt.Printf("pat has %d pick tasks:\n", len(wl))
	for _, it := range wl {
		fmt.Printf("  %-18s item=%v\n", it.Name, it.Data["item"])
	}
	for _, it := range wl {
		sys.Tasks.Start(it.ID, "pat")
		sys.Tasks.Complete(it.ID, "pat", nil)
	}

	final, _ := sys.Engine.Instance(inst.ID)
	fmt.Printf("order %s: %s picked=%v shipped=%v\n",
		final.ID, final.Status, final.Vars["picked"], final.Vars["shipped"])
}
