// Loan origination: the classic BPMS demo process. Combines a decision
// table (risk scoring), exclusive routing, human tasks with roles and
// deadline escalation via an interrupting boundary timer, and a
// terminate end for fraud cases.
package main

import (
	"fmt"
	"log"
	"time"

	"bpms"
	"bpms/internal/timer"
)

func riskTable() *bpms.CompiledTable {
	t, err := bpms.CompileTable(bpms.DecisionTable{
		Name:      "loan-risk",
		HitPolicy: bpms.HitUnique,
		Outputs:   []string{"risk", "rate"},
		Rules: []bpms.DecisionRule{
			{Conditions: []string{"amount < 10000", "score >= 600"},
				Outputs: map[string]string{"risk": `"low"`, "rate": "0.04"}},
			{Conditions: []string{"amount < 10000", "score < 600"},
				Outputs: map[string]string{"risk": `"medium"`, "rate": "0.09"}},
			{Conditions: []string{"amount >= 10000", "score >= 700"},
				Outputs: map[string]string{"risk": `"medium"`, "rate": "0.07"}},
			{Conditions: []string{"amount >= 10000", "score < 700"},
				Outputs: map[string]string{"risk": `"high"`, "rate": "0.14"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func main() {
	// A virtual clock lets the demo fire the 48h escalation instantly.
	clock := timer.NewVirtualClock(time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC))
	sys, err := bpms.Open(bpms.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	sys.AddUser("uma", "underwriter")
	sys.AddUser("sam", "senior-underwriter")

	table := riskTable()
	// The scoring service task evaluates the decision table.
	sys.Engine.RegisterHandler("loan.score", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		d, err := table.Eval(envOf(tc.Vars))
		if err != nil {
			return nil, err
		}
		return d.Outputs, nil
	})
	sys.Engine.RegisterHandler("loan.fraudCheck", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		amount, _ := tc.Vars["amount"].AsInt()
		return map[string]bpms.Value{"fraud": bpms.BoolValue(amount == 666)}, nil
	})
	sys.Engine.RegisterHandler("loan.payout", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		return map[string]bpms.Value{"paid": bpms.BoolValue(true)}, nil
	})

	proc := bpms.NewProcess("loan-origination").
		Name("Loan origination").
		Start("applied").
		ServiceTask("fraudCheck", "loan.fraudCheck").
		XOR("fraudGate", bpms.DefaultFlow("clean")).
		TerminateEnd("fraudStop").
		ServiceTask("score", "loan.score").
		XOR("route", bpms.DefaultFlow("manual")).
		ScriptTask("autoApprove", bpms.Output("decision", `"auto-approved"`)).
		UserTask("review", bpms.Name("Underwrite loan"), bpms.Role("underwriter"), bpms.DueIn("48h")).
		UserTask("seniorReview", bpms.Name("Senior review"), bpms.Role("senior-underwriter")).
		XOR("merge").
		End("done").
		Flow("applied", "fraudCheck").
		Flow("fraudCheck", "fraudGate").
		FlowIf("fraudGate", "fraudStop", "fraud == true").
		FlowID("clean", "fraudGate", "score", "").
		Flow("score", "route").
		FlowIf("route", "autoApprove", `risk == "low"`).
		FlowID("manual", "route", "review", "").
		Flow("autoApprove", "merge").
		Flow("review", "merge").
		Flow("seniorReview", "merge").
		Flow("merge", "done").
		BoundaryTimer("overdue", "review", "48h", true).
		Flow("overdue", "seniorReview").
		MustBuild()

	if res, err := bpms.Verify(proc); err != nil || !res.Sound {
		log.Fatalf("verification failed: %v %v", err, res)
	}
	if err := sys.Engine.Deploy(proc); err != nil {
		log.Fatal(err)
	}

	// Case 1: small, good score — auto approved.
	c1, _ := sys.Engine.StartInstance("loan-origination",
		map[string]any{"amount": 5000, "score": 720})
	fmt.Printf("case 1: %-9s decision=%v risk=%v\n", c1.Status, c1.Vars["decision"], c1.Vars["risk"])

	// Case 2: big loan — manual review, completed in time.
	c2, _ := sys.Engine.StartInstance("loan-origination",
		map[string]any{"amount": 50000, "score": 650})
	it := sys.Tasks.OfferedItems("uma")[0]
	sys.Tasks.Claim(it.ID, "uma")
	sys.Tasks.Start(it.ID, "uma")
	sys.Tasks.Complete(it.ID, "uma", map[string]any{"decision": "manually approved"})
	c2v, _ := sys.Engine.Instance(c2.ID)
	fmt.Printf("case 2: %-9s decision=%v risk=%v\n", c2v.Status, c2v.Vars["decision"], c2v.Vars["risk"])

	// Case 3: manual review never happens — the 48h boundary timer
	// escalates to a senior underwriter.
	c3, _ := sys.Engine.StartInstance("loan-origination",
		map[string]any{"amount": 80000, "score": 610})
	sys.Timers.AdvanceTo(clock.Advance(50 * time.Hour)) // two days pass
	it3 := sys.Tasks.OfferedItems("sam")[0]
	fmt.Printf("case 3: escalated to %s (%q)\n", "sam", it3.Name)
	sys.Tasks.Claim(it3.ID, "sam")
	sys.Tasks.Start(it3.ID, "sam")
	sys.Tasks.Complete(it3.ID, "sam", map[string]any{"decision": "approved after escalation"})
	c3v, _ := sys.Engine.Instance(c3.ID)
	fmt.Printf("case 3: %-9s decision=%v\n", c3v.Status, c3v.Vars["decision"])

	// Case 4: fraud — terminate end kills the case immediately.
	c4, _ := sys.Engine.StartInstance("loan-origination",
		map[string]any{"amount": 666, "score": 800})
	fmt.Printf("case 4: %-9s (terminated by fraud gate)\n", c4.Status)
}

// envOf adapts a variable snapshot to an expression environment.
type envMap map[string]bpms.Value

func (m envMap) Lookup(name string) (bpms.Value, bool) {
	v, ok := m[name]
	if !ok {
		return bpms.Null, true // lenient, like the engine
	}
	return v, true
}

func envOf(vars map[string]bpms.Value) bpms.Env { return envMap(vars) }
