// Quickstart: define a small approval process, verify it, run a case
// through the worklist, and print the audit trail.
package main

import (
	"fmt"
	"log"

	"bpms"
)

func main() {
	// 1. Assemble an in-memory BPMS and register a user.
	sys, err := bpms.Open(bpms.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	sys.AddUser("alice", "approver")

	// 2. Model the process: received -> approve (human) -> route on
	// the decision -> done/rejected.
	proc := bpms.NewProcess("order-approval").
		Start("received").
		UserTask("approve", bpms.Name("Approve order"), bpms.Role("approver")).
		XOR("decision", bpms.DefaultFlow("no")).
		ScriptTask("archive", bpms.Output("result", `"accepted: " + str(amount)`)).
		ScriptTask("notify", bpms.Output("result", `"rejected"`)).
		XOR("merge").
		End("done").
		Flow("received", "approve").
		Flow("approve", "decision").
		FlowIf("decision", "archive", "approved == true").
		FlowID("no", "decision", "notify", "").
		Flow("archive", "merge").
		Flow("notify", "merge").
		Flow("merge", "done").
		MustBuild()

	// 3. Verify soundness before deploying.
	res, err := bpms.Verify(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: sound=%v (method %s, %d states)\n", res.Sound, res.Method, res.StateCount)

	if err := sys.Engine.Deploy(proc); err != nil {
		log.Fatal(err)
	}

	// 4. Start a case.
	inst, err := sys.Engine.StartInstance("order-approval", map[string]any{"amount": 420})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s is %s\n", inst.ID, inst.Status)

	// 5. Work the task from alice's worklist.
	offered := sys.Tasks.OfferedItems("alice")
	fmt.Printf("alice sees %d offered task(s): %s\n", len(offered), offered[0].Name)
	item := offered[0]
	if _, err := sys.Tasks.Claim(item.ID, "alice"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Tasks.Start(item.ID, "alice"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Tasks.Complete(item.ID, "alice", map[string]any{"approved": true}); err != nil {
		log.Fatal(err)
	}

	// 6. The case completed; inspect the outcome and audit trail.
	final, err := sys.Engine.Instance(inst.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %s is %s, result=%s\n", final.ID, final.Status, final.Vars["result"])
	fmt.Println("audit trail:")
	for _, ev := range sys.History.EventsOf(inst.ID) {
		fmt.Printf("  %-20s %s\n", ev.Type, ev.ElementID)
	}
}
