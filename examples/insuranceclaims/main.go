// Insurance claims as a digital twin: simulate the claims process
// under increasing load and compare work-allocation policies — the
// what-if analysis a BPMS simulation component exists for.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bpms"
	"bpms/internal/resource"
)

func claimsProcess() *bpms.Process {
	return bpms.NewProcess("claims").
		Name("Insurance claim handling").
		Start("filed").
		UserTask("register", bpms.Name("Register claim"), bpms.Role("clerk")).
		XOR("triage", bpms.DefaultFlow("simple")).
		UserTask("assess", bpms.Name("Assess damage"), bpms.Role("assessor")).
		UserTask("quickCheck", bpms.Name("Quick check"), bpms.Role("clerk")).
		XOR("merge").
		UserTask("settle", bpms.Name("Settle payment"), bpms.Role("clerk")).
		End("closed").
		Flow("filed", "register").
		Flow("register", "triage").
		FlowIf("triage", "assess", "amount > 5000").
		FlowID("simple", "triage", "quickCheck", "").
		Flow("assess", "merge").
		Flow("quickCheck", "merge").
		Flow("merge", "settle").
		Flow("settle", "closed").
		MustBuild()
}

func main() {
	proc := claimsProcess()
	if res, err := bpms.Verify(proc); err != nil || !res.Sound {
		log.Fatalf("claims process not sound: %v %v", err, res)
	}

	resources := map[string][]string{
		"clerk":    {"c1", "c2", "c3"},
		"assessor": {"a1", "a2"},
	}
	vars := func(i int, r *rand.Rand) map[string]any {
		return map[string]any{"amount": 1000 + r.Intn(10000)}
	}

	fmt.Println("— load sweep (shortest-queue allocation) —")
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "interarrival", "p50 cycle", "p95 cycle", "p50 wait", "util(c1)")
	for _, ia := range []time.Duration{20 * time.Minute, 10 * time.Minute, 6 * time.Minute} {
		res, err := bpms.Simulate(bpms.SimConfig{
			Process:        proc,
			Cases:          400,
			Interarrival:   bpms.ExpDist(ia),
			DefaultService: bpms.LognormalDist{M: 12 * time.Minute, Shape: 0.5},
			Resources:      resources,
			Vars:           vars,
			Seed:           2026,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.1fm %9.1fm %9.1fm %9.0f%%\n",
			ia,
			res.CycleTime.Percentile(0.5)/60,
			res.CycleTime.Percentile(0.95)/60,
			res.WaitTime.Percentile(0.5)/60,
			100*res.Utilization("c1"))
	}

	fmt.Println("\n— allocation policy comparison at high load —")
	fmt.Printf("%-16s %10s %10s %10s\n", "policy", "p50 wait", "p90 wait", "p95 cycle")
	policies := []bpms.Policy{
		resource.NewRandomPolicy(7),
		resource.NewRoundRobinPolicy(),
		resource.ShortestQueuePolicy{},
	}
	for _, pol := range policies {
		res, err := bpms.Simulate(bpms.SimConfig{
			Process:        proc,
			Cases:          400,
			Interarrival:   bpms.ExpDist(6 * time.Minute),
			DefaultService: bpms.LognormalDist{M: 12 * time.Minute, Shape: 0.5},
			Resources:      resources,
			Policy:         pol,
			Vars:           vars,
			Seed:           2026,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.1fm %9.1fm %9.1fm\n",
			pol.Name(),
			res.WaitTime.Percentile(0.5)/60,
			res.WaitTime.Percentile(0.9)/60,
			res.CycleTime.Percentile(0.95)/60)
	}

	// Performance mining on the simulated log: where does time go?
	res, err := bpms.Simulate(bpms.SimConfig{
		Process:        proc,
		Cases:          300,
		Interarrival:   bpms.ExpDist(8 * time.Minute),
		DefaultService: bpms.LognormalDist{M: 12 * time.Minute, Shape: 0.5},
		Resources:      resources,
		Vars:           vars,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	acts, cases := bpms.Performance(res.Log)
	fmt.Printf("\n— performance mining over %d simulated cases —\n", cases.Cases)
	fmt.Printf("%-16s %8s %12s\n", "activity", "count", "mean sojourn")
	for _, name := range []string{"Register claim", "Assess damage", "Quick check", "Settle payment"} {
		if st, ok := acts[name]; ok {
			fmt.Printf("%-16s %8d %11.1fm\n", name, st.Count, st.Sojourn.Mean()/60)
		}
	}
}
