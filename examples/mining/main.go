// Mining: generate an event log by simulating a known process, export
// it as XES, rediscover the model with the alpha miner and the DFG
// miner, and score both with conformance checking — the full
// design → enact → monitor → rediscover loop.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"bpms"
)

func groundTruth() *bpms.Process {
	return bpms.NewProcess("helpdesk").
		Start("s").
		UserTask("triage", bpms.Name("Triage"), bpms.Role("agent")).
		XOR("severity", bpms.DefaultFlow("normal")).
		UserTask("urgent", bpms.Name("UrgentFix"), bpms.Role("agent")).
		UserTask("standard", bpms.Name("StandardFix"), bpms.Role("agent")).
		XOR("merge").
		UserTask("confirm", bpms.Name("Confirm"), bpms.Role("agent")).
		End("e").
		Flow("s", "triage").
		Flow("triage", "severity").
		FlowIf("severity", "urgent", "sev == 1").
		FlowID("normal", "severity", "standard", "").
		Flow("urgent", "merge").
		Flow("standard", "merge").
		Flow("merge", "confirm").
		Flow("confirm", "e").
		MustBuild()
}

func main() {
	// 1. Simulate the ground-truth process to produce an event log.
	res, err := bpms.Simulate(bpms.SimConfig{
		Process:        groundTruth(),
		Cases:          250,
		Interarrival:   bpms.ExpDist(3 * time.Minute),
		DefaultService: bpms.ExpDist(5 * time.Minute),
		Resources:      map[string][]string{"agent": {"a1", "a2", "a3"}},
		Vars: func(i int, r *rand.Rand) map[string]any {
			return map[string]any{"sev": r.Intn(3)} // ~1/3 urgent
		},
		Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d cases, %d completed\n", res.Started, res.Completed)

	// 2. Export the log as XES (the process-mining interchange format).
	xes, err := bpms.EncodeXES(res.Log)
	if err != nil {
		log.Fatal(err)
	}
	path := "helpdesk.xes"
	if err := os.WriteFile(path, xes, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, %d traces)\n", path, len(xes), len(res.Log.Traces))
	defer os.Remove(path)

	// 3. Variant analysis: which paths does the process actually take?
	fmt.Println("\ntop variants:")
	for i, v := range res.Log.Variants() {
		if i >= 4 {
			break
		}
		fmt.Printf("  %4d× %v\n", v.Count, v.Activities)
	}

	// 4. Discover models. Alpha yields a workflow net; the DFG miner a
	// process map.
	alpha := bpms.AlphaMiner(res.Log)
	conf := bpms.TokenReplay(alpha, res.Log)
	fmt.Printf("\nalpha miner: %d transitions, %d places, replay fitness %.3f (%d/%d traces fit)\n",
		alpha.Net.Transitions(), alpha.Net.Places(), conf.Fitness(), conf.FitTraces, conf.Traces)

	dfg := bpms.BuildDFG(res.Log)
	fmt.Printf("DFG miner:   %d activities, %d edges, edge fitness %.3f\n",
		len(dfg.Activities), len(dfg.Counts), dfg.FitnessDFG(res.Log))

	// 5. Conformance against deviant behaviour: inject traces that
	// skip the confirmation step.
	deviant := *res.Log
	deviant.Traces = append([]bpms.Trace(nil), res.Log.Traces...)
	for i := 0; i < 25; i++ {
		tr := deviant.Traces[i]
		tr.Entries = tr.Entries[:len(tr.Entries)-1] // drop Confirm
		deviant.Traces[i] = tr
	}
	confDev := bpms.TokenReplay(alpha, &deviant)
	fmt.Printf("\nconformance on log with 25 truncated traces: fitness %.3f (%d/%d traces fit)\n",
		confDev.Fitness(), confDev.FitTraces, confDev.Traces)

	// 6. Performance mining: mean sojourn per activity.
	acts, cases := bpms.Performance(res.Log)
	fmt.Printf("\nperformance (%d cases, mean cycle %.1fm):\n", cases.Cases, cases.CycleTime.Mean()/60)
	for _, a := range []string{"Triage", "UrgentFix", "StandardFix", "Confirm"} {
		if st, ok := acts[a]; ok {
			fmt.Printf("  %-12s n=%-4d mean sojourn %.1fm\n", a, st.Count, st.Sojourn.Mean()/60)
		}
	}
}
