// bpms is the offline toolbox: validate, verify, convert, run,
// simulate, and mine process definitions without a server.
//
// Usage:
//
//	bpms validate <file>                     structural validation
//	bpms verify <file>                       soundness check (WF-net)
//	bpms convert <in.json|in.xml> <out>      convert between JSON and XML
//	bpms run <file> [k=v ...]                run one case (service tasks noop)
//	bpms simulate <file> [-cases N] [-seed S] [-workers W]
//	bpms mine <log.xes>                      discover + conformance + performance
//	bpms variants <log.xes>                  variant analysis of a log
//	bpms dot <log.xes>                       DFG in Graphviz dot syntax
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bpms"
	"bpms/internal/engine"
	"bpms/internal/history"
	"bpms/internal/mine"
	"bpms/internal/model"
	"bpms/internal/sim"
	"bpms/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "verify":
		err = cmdVerify(args)
	case "convert":
		err = cmdConvert(args)
	case "run":
		err = cmdRun(args)
	case "simulate":
		err = cmdSimulate(args)
	case "mine":
		err = cmdMine(args)
	case "variants":
		err = cmdVariants(args)
	case "dot":
		err = cmdDot(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpms:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bpms <validate|verify|convert|run|simulate|mine|variants|dot> ...")
	os.Exit(2)
}

func loadProcess(path string) (*model.Process, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch filepath.Ext(path) {
	case ".xml", ".bpmn":
		return model.DecodeXML(data)
	default:
		return model.DecodeJSON(data)
	}
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate <file>")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	st := p.Stats()
	fmt.Printf("%s: valid (%d elements, %d flows, %d tasks, %d gateways)\n",
		p.ID, st.Elements, st.Flows, st.Tasks, st.Gateways)
	return nil
}

func cmdVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("verify <file>")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	res, err := verify.Check(p, verify.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("%s: sound=%v bounded=%v method=%s states=%d net=%dp/%dt reduced=%dp/%dt\n",
		p.ID, res.Sound, res.Bounded, res.Method, res.StateCount,
		res.NetPlaces, res.NetTransitions, res.ReducedPlaces, res.ReducedTransitions)
	for _, v := range res.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	for _, w := range res.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
	if !res.Sound {
		os.Exit(1)
	}
	return nil
}

func cmdConvert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert <in> <out>")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	var data []byte
	switch filepath.Ext(args[1]) {
	case ".xml", ".bpmn":
		data, err = model.EncodeXML(p)
	case ".json":
		data, err = model.EncodeJSON(p)
	default:
		return fmt.Errorf("output must be .json, .xml, or .bpmn")
	}
	if err != nil {
		return err
	}
	return os.WriteFile(args[1], data, 0o644)
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run <file> [k=v ...]")
	}
	p, err := loadProcess(args[0])
	if err != nil {
		return err
	}
	sys, err := bpms.Open(bpms.Options{})
	if err != nil {
		return err
	}
	defer sys.Close()
	// Register a noop for every referenced handler so service tasks
	// pass through; user-task roles get a synthetic worker each.
	for _, el := range p.Elements {
		if el.Handler != "" {
			sys.Engine.RegisterHandler(el.Handler, func(engine.TaskContext) (map[string]bpms.Value, error) {
				return nil, nil
			})
		}
		if el.Role != "" {
			sys.AddUser("auto-"+el.Role, el.Role)
		}
	}
	if err := sys.Engine.Deploy(p); err != nil {
		return err
	}
	vars := map[string]any{}
	for _, pair := range args[1:] {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		var decoded any
		if json.Unmarshal([]byte(v), &decoded) == nil {
			vars[k] = decoded
		} else {
			vars[k] = v
		}
	}
	inst, err := sys.Engine.StartInstance(p.ID, vars)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s: %s\n", inst.ID, inst.Status)
	for _, tok := range inst.ActiveTokens {
		fmt.Printf("  waiting at %s (%s)\n", tok.Element, tok.Wait)
	}
	for _, ev := range sys.History.EventsOf(inst.ID) {
		if ev.Type == history.ElementCompleted {
			fmt.Printf("  completed %s\n", ev.ElementID)
		}
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	cases := fs.Int("cases", 200, "cases to simulate")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 3, "workers per role")
	interarrival := fs.Duration("interarrival", 2*time.Minute, "mean case interarrival")
	service := fs.Duration("service", 5*time.Minute, "mean task service time")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("simulate [flags] <file>")
	}
	p, err := loadProcess(fs.Arg(0))
	if err != nil {
		return err
	}
	// Staff every role named in the model.
	resources := map[string][]string{}
	for _, el := range p.Elements {
		if el.Role != "" && resources[el.Role] == nil {
			var pool []string
			for i := 0; i < *workers; i++ {
				pool = append(pool, fmt.Sprintf("%s-%d", el.Role, i+1))
			}
			resources[el.Role] = pool
		}
	}
	res, err := sim.Run(sim.Config{
		Process:        p,
		Cases:          *cases,
		Interarrival:   sim.Exp(*interarrival),
		DefaultService: sim.Lognormal{M: *service, Shape: 0.5},
		Resources:      resources,
		Seed:           *seed,
		Vars: func(i int, r *rand.Rand) map[string]any {
			return map[string]any{"rnd": r.Intn(100)}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d cases: %d completed, %d faulted\n", res.Started, res.Completed, res.Faulted)
	fmt.Printf("cycle time: p50=%.1fm p90=%.1fm p99=%.1fm\n",
		res.CycleTime.Percentile(0.5)/60, res.CycleTime.Percentile(0.9)/60, res.CycleTime.Percentile(0.99)/60)
	fmt.Printf("wait time:  p50=%.1fm p90=%.1fm\n",
		res.WaitTime.Percentile(0.5)/60, res.WaitTime.Percentile(0.9)/60)
	for role, pool := range resources {
		var u float64
		for _, w := range pool {
			u += res.Utilization(w)
		}
		fmt.Printf("utilisation %-12s %.0f%% (x%d)\n", role, 100*u/float64(len(pool)), len(pool))
	}
	return nil
}

func loadLog(path string) (*history.Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return history.DecodeXES(data)
}

func cmdMine(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("mine <log.xes>")
	}
	l, err := loadLog(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("log: %d traces\n", len(l.Traces))
	res := mine.Alpha(l)
	conf := mine.TokenReplay(res, l)
	fmt.Printf("alpha: %d transitions, %d places, fitness %.3f (%d/%d traces fit)\n",
		res.Net.Transitions(), res.Net.Places(), conf.Fitness(), conf.FitTraces, conf.Traces)
	g := mine.BuildDFG(l)
	fmt.Printf("dfg:   %d activities, %d edges, fitness %.3f\n",
		len(g.Activities), len(g.Counts), g.FitnessDFG(l))
	acts, cs := mine.Performance(l)
	fmt.Printf("cases: %d, mean cycle %.1fm, mean events %.1f\n",
		cs.Cases, cs.CycleTime.Mean()/60, cs.Events.Mean())
	for _, a := range g.ActivityList() {
		st := acts[a]
		fmt.Printf("  %-24s n=%-6d mean sojourn %.1fm\n", a, st.Count, st.Sojourn.Mean()/60)
	}
	return nil
}

func cmdVariants(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("variants <log.xes>")
	}
	l, err := loadLog(args[0])
	if err != nil {
		return err
	}
	for _, v := range l.Variants() {
		fmt.Printf("%6d× %s\n", v.Count, strings.Join(v.Activities, " → "))
	}
	return nil
}

func cmdDot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dot <log.xes>")
	}
	l, err := loadLog(args[0])
	if err != nil {
		return err
	}
	fmt.Print(mine.BuildDFG(l).Dot())
	return nil
}
