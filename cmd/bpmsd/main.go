// bpmsd is the BPMS server daemon: it assembles a (persistent or
// in-memory) BPMS and serves the HTTP API.
//
// Usage:
//
//	bpmsd -addr :8080 -data ./data -sync batch -shards 4 -user alice=clerk,manager
//
// With -shards N the runtime partitions process instances across N
// independent engine shards — each with its own WAL (under
// shard-0000/… subdirectories of the data dir), snapshot store, and
// group-commit batcher — multiplying durable throughput on multi-core
// boxes (experiment T11). A data dir must be reopened with the shard
// count it was created with.
//
// Durability is controlled by -sync (never|always|every|batch; see the
// README's Durability section), -sync-every (append count for the
// every policy), and -sync-interval (max fsync latency for the batch
// policy). With -durable (default on for any policy except never),
// API-visible state transitions wait for the WAL commit
// acknowledgement, so a SIGKILL after a response never loses the
// acknowledged state. On SIGINT/SIGTERM the daemon drains in-flight
// HTTP requests and commit batches, syncs the WAL, and closes cleanly.
//
// The audit trail is recorded through an asynchronous striped history
// pipeline: -history-stripes partitions audit events by instance ID
// across independent journals and committers, and -history-window
// bounds the events each stripe keeps resident in RAM (older events
// are served by journal replay). On shutdown the pipeline is drained,
// so every enqueued audit event reaches its journal.
//
// The human-task worklist is likewise lock-striped: -worklist-stripes N
// partitions work items across N independently locked stripes with
// per-user, per-state, and due-time indexes (experiment T13). The
// worklist is in-memory — work items are reissued from the engine
// journals on recovery — so the flag composes freely with any data dir.
//
// Definitions are deployed and instances driven through the REST API
// (see internal/api); bpmsctl is the companion client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bpms"
	"bpms/internal/api"
	"bpms/internal/fault"
	"bpms/internal/obs"
	"bpms/internal/resource"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	shards := flag.Int("shards", 1, "engine shards, each with its own WAL/snapshot/commit pipeline (data dirs must be reopened with the shard count they were created with)")
	syncMode := flag.String("sync", "batch", "WAL sync policy: never|always|every|batch")
	syncEvery := flag.Int("sync-every", 256, "appends between fsyncs (every policy)")
	syncInterval := flag.Duration("sync-interval", 2*time.Millisecond, "max delay before batched appends are fsynced (batch policy)")
	snapshotEvery := flag.Int("snapshot-every", 1000, "journal appends between snapshots (0 = never)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "wall-clock snapshot cadence for shards whose journal advanced (0 = append-count trigger only)")
	segmentSize := flag.Int64("wal-segment-size", 0, "max bytes per WAL segment file before rollover (0 = default 4MiB)")
	recoveryWorkers := flag.Int("recovery-workers", 0, "decode workers per shard for snapshot load and parallel segment replay (0 = GOMAXPROCS, 1 = serial)")
	timerStripes := flag.Int("timer-stripes", 0, "independently locked timing-wheel stripes (0 = default 8, 1 = single wheel)")
	historyStripes := flag.Int("history-stripes", 1, "history store stripes, each with its own journal and commit pipeline (data dirs must be reopened with the stripe count they were created with)")
	historyWindow := flag.Int("history-window", 100000, "audit events each history stripe keeps resident in RAM (0 = unbounded; older events are served from the journal)")
	worklistStripes := flag.Int("worklist-stripes", 1, "worklist lock stripes, each with its own item map and secondary indexes (in-memory; any value reopens any data dir)")
	autoAllocate := flag.Bool("auto-allocate", false, "push tasks to users instead of offering")
	metrics := flag.Bool("metrics", false, "instrument hot paths and serve Prometheus text format at GET /metrics")
	auditInterval := flag.Duration("audit-interval", 0, "SLA-audit sweep cadence (0 = sweeper off); violations surface at /metrics, /api/v1/violations, and in the audit trail")
	taskSLA := flag.Duration("task-sla", 0, "default due time applied to work items created without a deadline, so the audit sweep covers every open item (0 = explicit deadlines only)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	httpReadTimeout := flag.Duration("http-read-timeout", 0, "max time to read a full request including body (0 = 30s default)")
	httpWriteTimeout := flag.Duration("http-write-timeout", 0, "max time to write a full response (0 = 5m default, sized for XES exports)")
	maxReads := flag.Int("max-inflight-reads", 0, "admission control: concurrent GET requests executing (0 = unlimited)")
	maxWrites := flag.Int("max-inflight-writes", 0, "admission control: concurrent non-GET requests executing (0 = unlimited)")
	admissionQueue := flag.Int("admission-queue", 0, "admission control: requests per class allowed to wait for a slot before new arrivals are shed with 429 (0 = default 64)")
	admissionTimeout := flag.Duration("admission-timeout", 0, "admission control: max wait for an execution slot before a queued request is shed with 503 (0 = default 1s)")
	faultSpec := flag.String("fault", "", "inject storage faults for chaos testing, e.g. 'path=shard-0000;fsync-at=100' (keys: path, fsync-at, fsync-prob, seed, enospc-after, drop-after, write-latency, fsync-latency)")
	var users []resource.User
	flag.Func("user", "user spec id=role1,role2 (repeatable)", func(s string) error {
		id, roles, ok := strings.Cut(s, "=")
		if !ok || id == "" {
			return fmt.Errorf("want id=role1,role2, got %q", s)
		}
		u := resource.User{ID: id}
		if roles != "" {
			u.Roles = strings.Split(roles, ",")
		}
		users = append(users, u)
		return nil
	})
	durable := flag.Bool("durable", true, "state transitions wait for the WAL commit ack (forced off with -sync never)")
	flag.Parse()

	policy, err := bpms.ParseSyncPolicy(*syncMode)
	if err != nil {
		log.Fatal(err)
	}
	opts := bpms.Options{
		DataDir:         *data,
		Shards:          *shards,
		SyncPolicy:      policy,
		SyncInterval:    *syncEvery,
		BatchMaxDelay:   *syncInterval,
		Durable:         *durable && policy != bpms.SyncNever,
		SegmentSize:     *segmentSize,
		RecoveryWorkers: *recoveryWorkers,
		HistoryStripes:  *historyStripes,
		HistoryWindow:   *historyWindow,
		WorklistStripes: *worklistStripes,
		TimerStripes:    *timerStripes,
		AutoAllocate:    *autoAllocate,
		AuditInterval:   *auditInterval,
		TaskSLA:         *taskSLA,
		RunTimers:       true,
		Users:           users,
	}
	if *metrics || *auditInterval > 0 {
		// The audit sweeper exports its counters through the same
		// registry, so enabling it implies the instrumentation layer.
		opts.Metrics = obs.New()
	}
	if *data != "" {
		opts.SnapshotEvery = *snapshotEvery
		opts.SnapshotInterval = *snapshotInterval
	}
	if *faultSpec != "" {
		if *data == "" {
			log.Fatal("bpmsd: -fault requires -data (faults are injected under the storage layer)")
		}
		plan, err := fault.ParsePlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		opts.FS = fault.NewInjector(fault.OS, plan)
		fmt.Printf("bpmsd: fault injection armed: %s\n", *faultSpec)
	}
	sys, err := bpms.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Effective configuration, then recovery summary.
	if *data == "" {
		fmt.Println("bpmsd: in-memory (no data dir; -sync has no effect)")
	} else {
		fmt.Printf("bpmsd: data dir %s, sync=%s", *data, policy)
		switch policy {
		case bpms.SyncEvery:
			fmt.Printf(" every=%d", *syncEvery)
		case bpms.SyncBatch:
			fmt.Printf(" interval=%s", *syncInterval)
		}
		fmt.Printf(", durable=%v, shards=%d, history-stripes=%d, history-window=%d, worklist-stripes=%d\n",
			opts.Durable, sys.Engine.Shards(), *historyStripes, *historyWindow, sys.Tasks.Stripes())
	}
	if opts.Metrics != nil {
		fmt.Printf("bpmsd: metrics on (GET /metrics), audit-interval=%s, task-sla=%s\n", *auditInterval, *taskSLA)
	}
	fmt.Printf("bpmsd: %d definition(s), %d instance(s) recovered across %d shard(s), %d user(s)\n",
		len(sys.Engine.Definitions()), len(sys.Engine.Instances()), sys.Engine.Shards(), sys.Directory.Count())
	if *data != "" {
		for _, st := range sys.ShardStats() {
			fmt.Printf("bpmsd: shard %d replayed in %.3fs (%d instance(s), journal index %d, %d byte(s) on disk)\n",
				st.Shard, st.RecoverySeconds, st.Instances, st.JournalLast, st.DiskBytes)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	apiOpts := []api.Option{api.WithHTTPTimeouts(*httpReadTimeout, *httpWriteTimeout)}
	if *maxReads > 0 || *maxWrites > 0 {
		apiOpts = append(apiOpts, api.WithAdmission(api.AdmissionConfig{
			MaxInFlightRead:  *maxReads,
			MaxInFlightWrite: *maxWrites,
			QueueDepth:       *admissionQueue,
			QueueTimeout:     *admissionTimeout,
		}))
		fmt.Printf("bpmsd: admission control on: reads=%d writes=%d queue=%d\n",
			*maxReads, *maxWrites, *admissionQueue)
	}
	srv := api.New(sys, apiOpts...)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-errc:
		// Listener failed before any signal: nothing to drain.
		sys.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		fmt.Println("bpmsd: shutdown signal received, draining")
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "bpmsd: drain: %v\n", err)
		}
		cancel()
		active := 0
		for _, id := range sys.Engine.Instances() {
			if v, err := sys.Engine.Instance(id); err == nil && v.Status == bpms.StatusActive {
				active++
			}
		}
		if err := sys.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bpmsd: close: %v\n", err)
			os.Exit(1)
		}
		last, synced := sys.JournalIndexes()
		fmt.Printf("bpmsd: shutdown complete: %d active instance(s) drained, journal index %d, last synced %d\n",
			active, last, synced)
	}
}
