// bpmsd is the BPMS server daemon: it assembles a (persistent or
// in-memory) BPMS and serves the HTTP API.
//
// Usage:
//
//	bpmsd -addr :8080 -data ./data -user alice=clerk,manager -user bob=clerk
//
// Definitions are deployed and instances driven through the REST API
// (see internal/api); bpmsctl is the companion client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"bpms"
	"bpms/internal/api"
	"bpms/internal/resource"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "data directory (empty = in-memory)")
	snapshotEvery := flag.Int("snapshot-every", 1000, "journal appends between snapshots (0 = never)")
	autoAllocate := flag.Bool("auto-allocate", false, "push tasks to users instead of offering")
	var users []resource.User
	flag.Func("user", "user spec id=role1,role2 (repeatable)", func(s string) error {
		id, roles, ok := strings.Cut(s, "=")
		if !ok || id == "" {
			return fmt.Errorf("want id=role1,role2, got %q", s)
		}
		u := resource.User{ID: id}
		if roles != "" {
			u.Roles = strings.Split(roles, ",")
		}
		users = append(users, u)
		return nil
	})
	flag.Parse()

	opts := bpms.Options{
		DataDir:      *data,
		AutoAllocate: *autoAllocate,
		RunTimers:    true,
		Users:        users,
	}
	if *data != "" {
		opts.SnapshotEvery = *snapshotEvery
	}
	sys, err := bpms.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("bpmsd: %d definition(s), %d instance(s) recovered, %d user(s)\n",
		len(sys.Engine.Definitions()), len(sys.Engine.Instances()), sys.Directory.Count())
	srv := api.New(sys)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
