// bpmsctl is the command-line client for a running bpmsd. It speaks
// the versioned v1 API through the shared typed client
// (internal/client).
//
// Usage:
//
//	bpmsctl [-server http://localhost:8080] <command> [args]
//
// Commands:
//
//	deploy <file.json|file.xml>          deploy a definition
//	defs                                 list definitions
//	verify <processId>                   soundness-check a definition
//	start <processId> [k=v ...]          start an instance
//	ps [state] [offset limit]            list instances (paginated)
//	show <instanceId>                    inspect an instance
//	cancel <instanceId>                  cancel an instance
//	history <instanceId>                 audit trail of an instance
//	history export <file>                stream the full history as XES to a file
//	tasks <user>                         worklist + offers of a user
//	claim|begin <itemId> <user>          claim / start a work item
//	complete <itemId> <user> [k=v ...]   complete with outcome
//	fail <itemId> <user> <reason>        fail a work item
//	publish <message> <key> [k=v ...]    publish a correlated message
//	adduser <id> [role ...]              register a user in the directory
//	stats                                engine statistics (incl. per-shard instance counts)
//	snapshot                             write a state snapshot on every shard
//	xes                                  export history as XES to stdout
//
// Values in k=v pairs parse as JSON when possible ("true", "42",
// '"text"'), falling back to plain strings.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bpms/internal/client"
)

var api *client.Client

func main() {
	server := flag.String("server", "http://localhost:8080", "bpmsd base URL")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bpmsctl [-server URL] <command> [args]\nsee 'go doc bpms/cmd/bpmsctl' for commands\n")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	api = client.New(*server)
	cmd, rest := args[0], args[1:]
	if err := run(cmd, rest); err != nil {
		fmt.Fprintln(os.Stderr, "bpmsctl:", err)
		os.Exit(1)
	}
}

func run(cmd string, args []string) error {
	ctx := context.Background()
	switch cmd {
	case "deploy":
		if len(args) != 1 {
			return fmt.Errorf("deploy <file>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		ct := "application/json"
		if ext := filepath.Ext(args[0]); ext == ".xml" || ext == ".bpmn" {
			ct = "application/xml"
		}
		if err := api.DeployRaw(ctx, data, ct); err != nil {
			return err
		}
		fmt.Printf("bpmsctl: deployed %s\n", args[0])
		return nil
	case "defs":
		return print(api.Definitions(ctx))
	case "verify":
		if len(args) != 1 {
			return fmt.Errorf("verify <processId>")
		}
		return print(api.Verify(ctx, args[0]))
	case "start":
		if len(args) < 1 {
			return fmt.Errorf("start <processId> [k=v ...]")
		}
		return print(api.StartInstance(ctx, args[0], parseVars(args[1:])))
	case "ps":
		q := client.InstanceQuery{}
		switch len(args) {
		case 0:
		case 1:
			q.State = args[0]
		case 3:
			q.State = args[0]
			var err error
			if q.Offset, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("ps: bad offset %q", args[1])
			}
			if q.Limit, err = strconv.Atoi(args[2]); err != nil {
				return fmt.Errorf("ps: bad limit %q", args[2])
			}
		default:
			return fmt.Errorf("ps [state] [offset limit]")
		}
		return print(api.Instances(ctx, q))
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("show <instanceId>")
		}
		return print(api.Instance(ctx, args[0]))
	case "cancel":
		if len(args) != 1 {
			return fmt.Errorf("cancel <instanceId>")
		}
		return api.CancelInstance(ctx, args[0])
	case "history":
		switch {
		case len(args) == 1 && args[0] != "export":
			return print(api.History(ctx, args[0]))
		case len(args) == 2 && args[0] == "export":
			return exportHistory(ctx, args[1])
		}
		return fmt.Errorf("history <instanceId> | history export <file>")
	case "tasks":
		if len(args) != 1 {
			return fmt.Errorf("tasks <user>")
		}
		worklist, offered, err := api.UserTasks(ctx, args[0])
		if err != nil {
			return err
		}
		return print(map[string][]client.Task{"worklist": worklist, "offered": offered}, nil)
	case "claim":
		if len(args) != 2 {
			return fmt.Errorf("claim <itemId> <user>")
		}
		return print(api.Claim(ctx, args[0], args[1]))
	case "begin":
		if len(args) != 2 {
			return fmt.Errorf("begin <itemId> <user>")
		}
		return print(api.StartTask(ctx, args[0], args[1]))
	case "complete":
		if len(args) < 2 {
			return fmt.Errorf("complete <itemId> <user> [k=v ...]")
		}
		return print(api.CompleteTask(ctx, args[0], args[1], parseVars(args[2:])))
	case "fail":
		if len(args) != 3 {
			return fmt.Errorf("fail <itemId> <user> <reason>")
		}
		return print(api.FailTask(ctx, args[0], args[1], args[2]))
	case "publish":
		if len(args) < 2 {
			return fmt.Errorf("publish <message> <key> [k=v ...]")
		}
		delivered, buffered, err := api.Publish(ctx, args[0], args[1], parseVars(args[2:]))
		if err != nil {
			return err
		}
		return print(map[string]any{"delivered": delivered, "buffered": buffered}, nil)
	case "adduser":
		if len(args) < 1 {
			return fmt.Errorf("adduser <id> [role ...]")
		}
		if err := api.AddUser(ctx, args[0], args[1:]...); err != nil {
			return err
		}
		fmt.Printf("bpmsctl: added user %s\n", args[0])
		return nil
	case "stats":
		return print(api.Stats(ctx))
	case "snapshot":
		return print(api.Snapshot(ctx))
	case "xes":
		return api.ExportXES(ctx, os.Stdout)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// exportHistory streams the server's XES export straight into a file:
// the response body is copied through, so neither the client nor the
// server holds the whole document in memory.
func exportHistory(ctx context.Context, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = api.ExportXES(ctx, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("bpmsctl: wrote %s\n", path)
	return nil
}

// parseVars turns k=v pairs into a map, JSON-decoding values when
// possible.
func parseVars(pairs []string) map[string]any {
	out := map[string]any{}
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			continue
		}
		var decoded any
		if err := json.Unmarshal([]byte(v), &decoded); err == nil {
			out[k] = decoded
		} else {
			out[k] = v
		}
	}
	return out
}

// print pretty-prints a typed API result (the generic tail of every
// command: bail on the request error, then render as indented JSON).
func print[T any](v T, err error) error {
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(os.Stdout, string(data))
	return err
}
