// bpmsctl is the command-line client for a running bpmsd.
//
// Usage:
//
//	bpmsctl [-server http://localhost:8080] <command> [args]
//
// Commands:
//
//	deploy <file.json|file.xml>          deploy a definition
//	defs                                 list definitions
//	verify <processId>                   soundness-check a definition
//	start <processId> [k=v ...]          start an instance
//	ps                                   list instances
//	show <instanceId>                    inspect an instance
//	cancel <instanceId>                  cancel an instance
//	history <instanceId>                 audit trail of an instance
//	history export <file>                stream the full history as XES to a file
//	tasks <user>                         worklist + offers of a user
//	claim|begin <itemId> <user>          claim / start a work item
//	complete <itemId> <user> [k=v ...]   complete with outcome
//	fail <itemId> <user> <reason>        fail a work item
//	publish <message> <key> [k=v ...]    publish a correlated message
//	stats                                engine statistics (incl. per-shard instance counts)
//	snapshot                             write a state snapshot on every shard
//	xes                                  export history as XES to stdout
//
// Values in k=v pairs parse as JSON when possible ("true", "42",
// '"text"'), falling back to plain strings.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

var server string

func main() {
	flag.StringVar(&server, "server", "http://localhost:8080", "bpmsd base URL")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bpmsctl [-server URL] <command> [args]\nsee 'go doc bpms/cmd/bpmsctl' for commands\n")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	if err := run(cmd, rest); err != nil {
		fmt.Fprintln(os.Stderr, "bpmsctl:", err)
		os.Exit(1)
	}
}

func run(cmd string, args []string) error {
	switch cmd {
	case "deploy":
		if len(args) != 1 {
			return fmt.Errorf("deploy <file>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		ct := "application/json"
		if ext := filepath.Ext(args[0]); ext == ".xml" || ext == ".bpmn" {
			ct = "application/xml"
		}
		return post("/api/definitions", ct, data)
	case "defs":
		return get("/api/definitions")
	case "verify":
		if len(args) != 1 {
			return fmt.Errorf("verify <processId>")
		}
		return get("/api/definitions/" + args[0] + "/verify")
	case "start":
		if len(args) < 1 {
			return fmt.Errorf("start <processId> [k=v ...]")
		}
		body := map[string]any{"processId": args[0], "vars": parseVars(args[1:])}
		return postJSON("/api/instances", body)
	case "ps":
		return get("/api/instances")
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("show <instanceId>")
		}
		return get("/api/instances/" + args[0])
	case "cancel":
		if len(args) != 1 {
			return fmt.Errorf("cancel <instanceId>")
		}
		return del("/api/instances/" + args[0])
	case "history":
		switch {
		case len(args) == 1 && args[0] != "export":
			return get("/api/instances/" + args[0] + "/history")
		case len(args) == 2 && args[0] == "export":
			return exportHistory(args[1])
		}
		return fmt.Errorf("history <instanceId> | history export <file>")
	case "tasks":
		if len(args) != 1 {
			return fmt.Errorf("tasks <user>")
		}
		return get("/api/tasks?user=" + args[0])
	case "claim", "begin":
		if len(args) != 2 {
			return fmt.Errorf("%s <itemId> <user>", cmd)
		}
		action := map[string]string{"claim": "claim", "begin": "start"}[cmd]
		return postJSON("/api/tasks/"+args[0]+"/"+action, map[string]any{"user": args[1]})
	case "complete":
		if len(args) < 2 {
			return fmt.Errorf("complete <itemId> <user> [k=v ...]")
		}
		return postJSON("/api/tasks/"+args[0]+"/complete",
			map[string]any{"user": args[1], "outcome": parseVars(args[2:])})
	case "fail":
		if len(args) != 3 {
			return fmt.Errorf("fail <itemId> <user> <reason>")
		}
		return postJSON("/api/tasks/"+args[0]+"/fail",
			map[string]any{"user": args[1], "reason": args[2]})
	case "publish":
		if len(args) < 2 {
			return fmt.Errorf("publish <message> <key> [k=v ...]")
		}
		return postJSON("/api/messages",
			map[string]any{"name": args[0], "key": args[1], "vars": parseVars(args[2:])})
	case "stats":
		return get("/api/stats")
	case "snapshot":
		return postJSON("/api/admin/snapshot", map[string]any{})
	case "xes":
		return get("/api/history/xes")
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// exportHistory streams the server's XES export straight into a file:
// the response body is copied through, so neither the client nor the
// server holds the whole document in memory.
func exportHistory(path string) error {
	resp, err := http.Get(server + "/api/history/xes")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("bpmsctl: wrote %d bytes to %s\n", n, path)
	return nil
}

// parseVars turns k=v pairs into a map, JSON-decoding values when
// possible.
func parseVars(pairs []string) map[string]any {
	out := map[string]any{}
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			continue
		}
		var decoded any
		if err := json.Unmarshal([]byte(v), &decoded); err == nil {
			out[k] = decoded
		} else {
			out[k] = v
		}
	}
	return out
}

func show(resp *http.Response) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	// Pretty-print JSON responses; pass anything else through.
	var pretty bytes.Buffer
	if json.Indent(&pretty, body, "", "  ") == nil {
		pretty.WriteByte('\n')
		_, err = pretty.WriteTo(os.Stdout)
	} else {
		_, err = os.Stdout.Write(body)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %s", resp.Status)
	}
	return err
}

func get(path string) error {
	resp, err := http.Get(server + path)
	if err != nil {
		return err
	}
	return show(resp)
}

func del(path string) error {
	req, err := http.NewRequest(http.MethodDelete, server+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return show(resp)
}

func post(path, contentType string, body []byte) error {
	resp, err := http.Post(server+path, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	return show(resp)
}

func postJSON(path string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return post(path, "application/json", data)
}
