// bpmsctl is the command-line client for a running bpmsd. It speaks
// the versioned v1 API through the shared typed client
// (internal/client).
//
// Usage:
//
//	bpmsctl [-server http://localhost:8080] <command> [args]
//
// Commands:
//
//	deploy <file.json|file.xml>          deploy a definition
//	defs                                 list definitions
//	verify <processId>                   soundness-check a definition
//	start <processId> [k=v ...]          start an instance
//	ps [state] [offset limit]            list instances (paginated)
//	show <instanceId>                    inspect an instance
//	cancel <instanceId>                  cancel an instance
//	history <instanceId>                 audit trail of an instance
//	history export <file>                stream the full history as XES to a file
//	tasks <user>                         worklist + offers of a user
//	claim|begin <itemId> <user>          claim / start a work item
//	complete <itemId> <user> [k=v ...]   complete with outcome
//	fail <itemId> <user> <reason>        fail a work item
//	publish <message> <key> [k=v ...]    publish a correlated message
//	adduser <id> [role ...]              register a user in the directory
//	stats [json]                         engine statistics, pretty-printed (json = raw document)
//	violations [json]                    active SLA violations from the audit sweeper
//	snapshot                             write a state snapshot on every shard
//	xes                                  export history as XES to stdout
//
// Values in k=v pairs parse as JSON when possible ("true", "42",
// '"text"'), falling back to plain strings.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"bpms/internal/client"
)

var api *client.Client

func main() {
	server := flag.String("server", "http://localhost:8080", "bpmsd base URL")
	retries := flag.Int("retries", 3, "max attempts per request; shed 429/503 responses retry with backoff (1 = no retries)")
	timeout := flag.Duration("timeout", time.Minute, "per-request deadline including retry backoff (0 = none)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bpmsctl [-server URL] <command> [args]\nsee 'go doc bpms/cmd/bpmsctl' for commands\n")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var copts []client.Option
	if *retries > 1 {
		pol := client.DefaultRetryPolicy
		pol.MaxAttempts = *retries
		copts = append(copts, client.WithRetry(pol))
	}
	if *timeout > 0 {
		copts = append(copts, client.WithTimeout(*timeout))
	}
	api = client.New(*server, copts...)
	cmd, rest := args[0], args[1:]
	if err := run(cmd, rest); err != nil {
		fmt.Fprintln(os.Stderr, "bpmsctl:", err)
		os.Exit(1)
	}
}

func run(cmd string, args []string) error {
	ctx := context.Background()
	switch cmd {
	case "deploy":
		if len(args) != 1 {
			return fmt.Errorf("deploy <file>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		ct := "application/json"
		if ext := filepath.Ext(args[0]); ext == ".xml" || ext == ".bpmn" {
			ct = "application/xml"
		}
		if err := api.DeployRaw(ctx, data, ct); err != nil {
			return err
		}
		fmt.Printf("bpmsctl: deployed %s\n", args[0])
		return nil
	case "defs":
		return print(api.Definitions(ctx))
	case "verify":
		if len(args) != 1 {
			return fmt.Errorf("verify <processId>")
		}
		return print(api.Verify(ctx, args[0]))
	case "start":
		if len(args) < 1 {
			return fmt.Errorf("start <processId> [k=v ...]")
		}
		return print(api.StartInstance(ctx, args[0], parseVars(args[1:])))
	case "ps":
		q := client.InstanceQuery{}
		switch len(args) {
		case 0:
		case 1:
			q.State = args[0]
		case 3:
			q.State = args[0]
			var err error
			if q.Offset, err = strconv.Atoi(args[1]); err != nil {
				return fmt.Errorf("ps: bad offset %q", args[1])
			}
			if q.Limit, err = strconv.Atoi(args[2]); err != nil {
				return fmt.Errorf("ps: bad limit %q", args[2])
			}
		default:
			return fmt.Errorf("ps [state] [offset limit]")
		}
		return print(api.Instances(ctx, q))
	case "show":
		if len(args) != 1 {
			return fmt.Errorf("show <instanceId>")
		}
		return print(api.Instance(ctx, args[0]))
	case "cancel":
		if len(args) != 1 {
			return fmt.Errorf("cancel <instanceId>")
		}
		return api.CancelInstance(ctx, args[0])
	case "history":
		switch {
		case len(args) == 1 && args[0] != "export":
			return print(api.History(ctx, args[0]))
		case len(args) == 2 && args[0] == "export":
			return exportHistory(ctx, args[1])
		}
		return fmt.Errorf("history <instanceId> | history export <file>")
	case "tasks":
		if len(args) != 1 {
			return fmt.Errorf("tasks <user>")
		}
		worklist, offered, err := api.UserTasks(ctx, args[0])
		if err != nil {
			return err
		}
		return print(map[string][]client.Task{"worklist": worklist, "offered": offered}, nil)
	case "claim":
		if len(args) != 2 {
			return fmt.Errorf("claim <itemId> <user>")
		}
		return print(api.Claim(ctx, args[0], args[1]))
	case "begin":
		if len(args) != 2 {
			return fmt.Errorf("begin <itemId> <user>")
		}
		return print(api.StartTask(ctx, args[0], args[1]))
	case "complete":
		if len(args) < 2 {
			return fmt.Errorf("complete <itemId> <user> [k=v ...]")
		}
		return print(api.CompleteTask(ctx, args[0], args[1], parseVars(args[2:])))
	case "fail":
		if len(args) != 3 {
			return fmt.Errorf("fail <itemId> <user> <reason>")
		}
		return print(api.FailTask(ctx, args[0], args[1], args[2]))
	case "publish":
		if len(args) < 2 {
			return fmt.Errorf("publish <message> <key> [k=v ...]")
		}
		delivered, buffered, err := api.Publish(ctx, args[0], args[1], parseVars(args[2:]))
		if err != nil {
			return err
		}
		return print(map[string]any{"delivered": delivered, "buffered": buffered}, nil)
	case "adduser":
		if len(args) < 1 {
			return fmt.Errorf("adduser <id> [role ...]")
		}
		if err := api.AddUser(ctx, args[0], args[1:]...); err != nil {
			return err
		}
		fmt.Printf("bpmsctl: added user %s\n", args[0])
		return nil
	case "stats":
		if len(args) == 1 && args[0] == "json" {
			return print(api.Stats(ctx))
		}
		if len(args) != 0 {
			return fmt.Errorf("stats [json]")
		}
		return prettyStats(ctx)
	case "violations":
		if len(args) == 1 && args[0] == "json" {
			return print(api.Violations(ctx))
		}
		if len(args) != 0 {
			return fmt.Errorf("violations [json]")
		}
		return prettyViolations(ctx)
	case "snapshot":
		return print(api.Snapshot(ctx))
	case "xes":
		return api.ExportXES(ctx, os.Stdout)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// num renders a stats value that arrived as JSON float64.
func num(v any) int64 {
	if f, ok := v.(float64); ok {
		return int64(f)
	}
	return 0
}

// prettyStats renders the stats document as a human-readable summary
// (the raw JSON stays available as `stats json`).
func prettyStats(ctx context.Context) error {
	st, err := api.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("definitions  %d\n", num(st["definitions"]))
	fmt.Printf("events       %d\n", num(st["events"]))
	if up, ok := st["uptimeSeconds"].(float64); ok {
		fmt.Printf("uptime       %s (started %v)\n", (time.Duration(up) * time.Second).String(), st["startedAt"])
	}
	if counts, ok := st["instances"].(map[string]any); ok {
		states := make([]string, 0, len(counts))
		for s := range counts {
			states = append(states, s)
		}
		sort.Strings(states)
		fmt.Println("instances")
		for _, s := range states {
			fmt.Printf("  %-10s %d\n", s, num(counts[s]))
		}
	}
	if shards, ok := st["shards"].([]any); ok {
		fmt.Println("shards")
		for _, raw := range shards {
			sh, ok := raw.(map[string]any)
			if !ok {
				continue
			}
			fmt.Printf("  %2d: %d instance(s), journal %d (synced %d), %d byte(s) on disk\n",
				num(sh["shard"]), num(sh["instances"]), num(sh["journalLast"]),
				num(sh["journalSynced"]), num(sh["diskBytes"]))
		}
	}
	if wl, ok := st["worklist"].(map[string]any); ok {
		if by, ok := wl["byState"].(map[string]any); ok && len(by) > 0 {
			states := make([]string, 0, len(by))
			for s := range by {
				states = append(states, s)
			}
			sort.Strings(states)
			fmt.Println("worklist")
			for _, s := range states {
				fmt.Printf("  %-10s %d\n", s, num(by[s]))
			}
		}
	}
	return nil
}

// prettyViolations renders the sweeper's active violation set, one
// line per violation.
func prettyViolations(ctx context.Context) error {
	rep, err := api.Violations(ctx)
	if err != nil {
		return err
	}
	if !rep.Enabled {
		fmt.Println("audit sweeper disabled (start bpmsd with -audit-interval)")
		return nil
	}
	fmt.Printf("%d active violation(s), %d sweep(s)\n", rep.Count, rep.Sweeps)
	for _, v := range rep.Items {
		loc := v.InstanceID
		if loc == "" {
			loc = v.ProcessID
		}
		if loc != "" {
			loc = " [" + loc + "]"
		}
		fmt.Printf("  %-20s %s%s  since %s: %s\n", v.Kind, v.ID, loc, v.Since, v.Detail)
	}
	return nil
}

// exportHistory streams the server's XES export straight into a file:
// the response body is copied through, so neither the client nor the
// server holds the whole document in memory.
func exportHistory(ctx context.Context, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = api.ExportXES(ctx, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("bpmsctl: wrote %s\n", path)
	return nil
}

// parseVars turns k=v pairs into a map, JSON-decoding values when
// possible.
func parseVars(pairs []string) map[string]any {
	out := map[string]any{}
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			continue
		}
		var decoded any
		if err := json.Unmarshal([]byte(v), &decoded); err == nil {
			out[k] = decoded
		} else {
			out[k] = v
		}
	}
	return out
}

// print pretty-prints a typed API result (the generic tail of every
// command: bail on the request error, then render as indented JSON).
func print[T any](v T, err error) error {
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(os.Stdout, string(data))
	return err
}
