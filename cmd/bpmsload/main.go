// bpmsload is the macro traffic generator (experiment T14): an
// open-loop HTTP workload driver that simulates a population of
// accounts with randomized schedules, drives a live bpmsd through the
// versioned v1 API across the scenario portfolio (quickstart, loan,
// claims, order, mining), and reports throughput and latency
// percentiles — a progress line every few seconds on stderr and a
// machine-readable BENCH_T14.json at the end.
//
// Usage:
//
//	bpmsload [-server http://localhost:8080] [-accounts 1000]
//	         [-duration 30s] [-scenarios quickstart,mining] ...
//
// Accounts only start cases and publish correlated messages; the
// human side of each scenario is worked by a small per-role pool of
// worker users (work items fan out to every user in a role, so the
// directory must stay small even when accounts number in the
// hundreds of thousands).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bpms/internal/load"
	"bpms/internal/sim"
)

func main() {
	var (
		server       = flag.String("server", "http://localhost:8080", "bpmsd base URL")
		accounts     = flag.Int("accounts", 1000, "simulated account population")
		duration     = flag.Duration("duration", 30*time.Second, "arrival-scheduling window")
		workers      = flag.Int("workers", 16, "HTTP dispatch pool size")
		usersPerRole = flag.Int("users-per-role", 2, "worker users registered per scenario role")
		arrival      = flag.Duration("arrival", 0, "mean per-account case interarrival (0 = scale so aggregate ≈ rate)")
		rate         = flag.Float64("rate", 50, "target aggregate case starts/sec when -arrival is 0")
		zipf         = flag.Float64("zipf", 1.2, "account activity skew (Zipf s; 0 = uniform)")
		scenarios    = flag.String("scenarios", "", "comma-separated scenario subset (default: all; one of quickstart,loan,claims,order,mining)")
		seed         = flag.Int64("seed", 1, "random seed")
		report       = flag.Duration("report", 5*time.Second, "progress line interval")
		out          = flag.String("out", "BENCH_T14.json", "report output path")
		minCompleted = flag.Int64("min-completed", 0, "fail unless at least this many instances completed (CI gate)")
		max5xx       = flag.Int64("max-5xx", -1, "fail if more than this many unclassified 5xx responses (CI gate; -1 = no check; shed 429/503 with retryable codes don't count)")
		retries      = flag.Int("retries", 5, "max client attempts per request; shed 429/503 responses retry with backoff on every method (1 = no retries)")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request client deadline including retry backoff (0 = none)")
	)
	flag.Parse()

	if err := run(*server, *accounts, *duration, *workers, *usersPerRole,
		*arrival, *rate, *zipf, *scenarios, *seed, *report, *out,
		*minCompleted, *max5xx, *retries, *reqTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "bpmsload:", err)
		os.Exit(1)
	}
}

func run(server string, accounts int, duration time.Duration, workers, usersPerRole int,
	arrival time.Duration, rate, zipf float64, scenarios string, seed int64,
	report time.Duration, out string, minCompleted, max5xx int64,
	retries int, reqTimeout time.Duration) error {
	var names []string
	if scenarios != "" {
		names = strings.Split(scenarios, ",")
	}
	portfolio, err := load.Select(names)
	if err != nil {
		return err
	}
	// With -arrival unset, pick the per-account mean so the aggregate
	// offered rate lands near -rate: mean = accounts / rate.
	if arrival <= 0 {
		if rate <= 0 {
			rate = 50
		}
		arrival = time.Duration(float64(accounts) / rate * float64(time.Second))
	}
	cfg := load.Config{
		Server:         server,
		Scenarios:      portfolio,
		Accounts:       accounts,
		Duration:       duration,
		Workers:        workers,
		UsersPerRole:   usersPerRole,
		Arrival:        sim.Exp(arrival),
		ZipfSkew:       zipf,
		Seed:           seed,
		ReportEvery:    report,
		Retries:        retries,
		RequestTimeout: reqTimeout,
		Out:            os.Stderr,
	}
	runner, err := load.NewRunner(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "[bpmsload] %d accounts, %d scenarios, mean interarrival %s (≈%.1f starts/s aggregate), %s window\n",
		accounts, len(portfolio), arrival.Truncate(time.Millisecond),
		float64(accounts)/arrival.Seconds(), duration)

	rep, runErr := runner.Run(ctx)
	if rep == nil {
		return runErr
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[bpmsload] done: %d events (%.1f/s), %d started, %d completed, %d errors (%d 5xx, %d shed), %d retries, max scheduler lag %s — wrote %s\n",
		rep.Aggregate.Events, rep.Aggregate.EventsPerSec,
		rep.Aggregate.Started, rep.Aggregate.Completed,
		rep.Aggregate.Errors, rep.Aggregate.HTTP5xx, rep.Aggregate.Shed,
		rep.ClientRetries,
		runner.MaxSchedulerLag().Truncate(time.Millisecond), out)
	if runErr != nil {
		return runErr
	}
	if rep.Aggregate.Completed < minCompleted {
		return fmt.Errorf("gate: %d instances completed, want >= %d", rep.Aggregate.Completed, minCompleted)
	}
	if max5xx >= 0 && rep.Aggregate.HTTP5xx > max5xx {
		return fmt.Errorf("gate: %d unclassified 5xx responses, want <= %d", rep.Aggregate.HTTP5xx, max5xx)
	}
	return nil
}
