// bpmsbench regenerates every table and figure of the evaluation suite
// (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	bpmsbench            # run everything at full scale
//	bpmsbench -quick     # smaller workloads (CI-sized)
//	bpmsbench -run T3    # a single experiment (T1..T13, F1..F5)
//	bpmsbench -run T13   # the worklist workload (poll/claim vs writers)
//	bpmsbench -json      # emit tables as JSON (for CI artifacts)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bpms/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	run := flag.String("run", "", "run a single experiment id (e.g. T1, F3)")
	asJSON := flag.Bool("json", false, "emit result tables as a JSON array on stdout")
	flag.Parse()

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}

	emit := func(tables []*bench.Table, elapsed time.Duration) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tables); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("done in %.1fs\n", elapsed.Seconds())
	}

	if *run != "" {
		fn, ok := bench.ByID(*run, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use T1..T13, F1..F5)\n", *run)
			os.Exit(2)
		}
		start := time.Now()
		emit([]*bench.Table{fn()}, time.Since(start))
		return
	}

	total := time.Now()
	var tables []*bench.Table
	for _, fn := range bench.All(scale) {
		start := time.Now()
		t := fn()
		tables = append(tables, t)
		if !*asJSON {
			fmt.Println(t.Render())
			fmt.Printf("(%s in %.1fs)\n\n", t.ID, time.Since(start).Seconds())
		}
	}
	if *asJSON {
		emit(tables, time.Since(total))
	} else {
		fmt.Printf("all experiments in %.1fs\n", time.Since(total).Seconds())
	}
}
