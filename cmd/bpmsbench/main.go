// bpmsbench regenerates every table and figure of the evaluation suite
// (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	bpmsbench            # run everything at full scale
//	bpmsbench -quick     # smaller workloads (CI-sized)
//	bpmsbench -run T3    # a single experiment (T1..T8, F1..F5)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bpms/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	run := flag.String("run", "", "run a single experiment id (e.g. T1, F3)")
	flag.Parse()

	scale := bench.Full
	if *quick {
		scale = bench.Quick
	}

	if *run != "" {
		fn, ok := bench.ByID(*run, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use T1..T8, F1..F5)\n", *run)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Println(fn().Render())
		fmt.Printf("(%s in %.1fs)\n", *run, time.Since(start).Seconds())
		return
	}

	total := time.Now()
	for _, fn := range bench.All(scale) {
		start := time.Now()
		t := fn()
		fmt.Println(t.Render())
		fmt.Printf("(%s in %.1fs)\n\n", t.ID, time.Since(start).Seconds())
	}
	fmt.Printf("all experiments in %.1fs\n", time.Since(total).Seconds())
}
