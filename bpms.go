// Package bpms is a complete, embeddable Business Process Management
// System in pure Go (standard library only): a BPMN-subset process
// modelling language, a formally verifiable workflow engine with
// human-task management and message correlation, durable event-sourced
// persistence, a discrete-event simulator, and process mining — the
// full component stack of the classic BPMS reference architecture.
//
// Quick start:
//
//	sys, _ := bpms.Open(bpms.Options{})
//	defer sys.Close()
//	sys.AddUser("alice", "approver")
//
//	proc := bpms.NewProcess("order").
//		Start("received").
//		UserTask("approve", bpms.Role("approver")).
//		End("done").
//		Seq("received", "approve", "done").
//		MustBuild()
//
//	sys.Engine.Deploy(proc)
//	inst, _ := sys.Engine.StartInstance("order", map[string]any{"amount": 420})
//
// The sub-systems are exposed as fields of BPMS: Engine (enactment),
// Tasks (worklists), Directory (organisational model), History
// (audit/XES export), Timers (deadlines). Verification, simulation and
// mining live in the Verify, Simulate, and mining helpers below.
package bpms

import (
	"bpms/internal/core"
	"bpms/internal/engine"
	"bpms/internal/expr"
	"bpms/internal/history"
	"bpms/internal/mine"
	"bpms/internal/model"
	"bpms/internal/resource"
	"bpms/internal/rules"
	"bpms/internal/shard"
	"bpms/internal/sim"
	"bpms/internal/storage"
	"bpms/internal/task"
	"bpms/internal/verify"
)

// System assembly.
type (
	// BPMS is the assembled system (engine + worklist + history + timers).
	BPMS = core.BPMS
	// Options configures Open. Options.Shards partitions instances
	// across independent engine shards (see the README's Scaling
	// section); the default is one shard.
	Options = core.Options
	// Router is the sharded enactment runtime behind BPMS.Engine: it
	// presents the single-engine surface while routing each instance
	// to the shard its ID hashes to.
	Router = shard.Router
	// ShardStat reports one shard's load (BPMS.ShardStats).
	ShardStat = core.ShardStat
	// SyncPolicy selects when the file journals force records to disk
	// (see Options.SyncPolicy and the README's Durability section).
	SyncPolicy = storage.SyncPolicy
)

// Journal sync policies for Options.SyncPolicy.
const (
	// SyncNever leaves flushing to the OS (fastest, weakest).
	SyncNever = storage.SyncNever
	// SyncAlways fsyncs after every append (slowest, strongest).
	SyncAlways = storage.SyncAlways
	// SyncEvery fsyncs after every Options.SyncInterval appends.
	SyncEvery = storage.SyncEvery
	// SyncBatch group-commits concurrent appends behind one fsync and
	// acknowledges durability per append (pair with Options.Durable).
	SyncBatch = storage.SyncBatch
)

// ParseSyncPolicy parses a policy name (never|always|every|batch).
var ParseSyncPolicy = storage.ParseSyncPolicy

// Open assembles (and, with a DataDir, recovers) a BPMS.
var Open = core.Open

// Process modelling.
type (
	// Process is a process definition.
	Process = model.Process
	// Element is one flow node.
	Element = model.Element
	// Flow is a sequence flow.
	Flow = model.Flow
	// Builder builds process definitions fluently.
	Builder = model.Builder
)

// NewProcess starts a process definition builder.
var NewProcess = model.New

// Builder options re-exported for model construction.
var (
	Name                = model.Name
	Role                = model.Role
	Assignee            = model.Assignee
	Capability          = model.Capability
	Priority            = model.Priority
	DueIn               = model.DueIn
	Output              = model.Output
	Message             = model.Message
	CorrelationKey      = model.CorrelationKey
	DefaultFlow         = model.Default
	Retries             = model.Retries
	MultiParallel       = model.MultiParallel
	MultiSequential     = model.MultiSequential
	CompletionCondition = model.CompletionCondition
)

// Serialisation codecs.
var (
	EncodeJSON = model.EncodeJSON
	DecodeJSON = model.DecodeJSON
	EncodeXML  = model.EncodeXML
	DecodeXML  = model.DecodeXML
)

// Execution.
type (
	// Engine is one enactment shard; BPMS.Engine is a Router over one
	// or more of these.
	Engine = engine.Engine
	// InstanceView is a snapshot of a process instance.
	InstanceView = engine.InstanceView
	// Handler implements a service task.
	Handler = engine.Handler
	// TaskContext is passed to Handlers.
	TaskContext = engine.TaskContext
	// BPMNError is a coded handler error caught by error boundaries.
	BPMNError = engine.BPMNError
)

// Instance statuses.
const (
	StatusActive    = engine.StatusActive
	StatusCompleted = engine.StatusCompleted
	StatusCancelled = engine.StatusCancelled
	StatusFaulted   = engine.StatusFaulted
)

// Expressions and values.
type (
	// Value is a dynamically typed expression value.
	Value = expr.Value
	// Env supplies variable bindings to expressions.
	Env = expr.Env
)

// Value constructors and evaluation helpers.
var (
	Null        = expr.Null
	BoolValue   = expr.Bool
	IntValue    = expr.Int
	FloatValue  = expr.Float
	StringValue = expr.String
	ListValue   = expr.List
	MapValue    = expr.Map
	EvalExpr    = expr.Eval
	CompileExpr = expr.Compile
	// CachedExpr compiles through the bounded shared program cache —
	// the compile-once entry point for ad-hoc expression sources.
	CachedExpr = expr.Cached
)

// Human tasks and resources.
type (
	// WorkItem is a human task on a worklist.
	WorkItem = task.Item
	// WorklistStats reports the striped task service's shape and load
	// (BPMS.Tasks.Stats; see Options.WorklistStripes).
	WorklistStats = task.Stats
	// User is one organisational resource.
	User = resource.User
	// Policy allocates work to resources.
	Policy = resource.Policy
)

// Verification.
type (
	// VerifyResult reports a soundness check.
	VerifyResult = verify.Result
	// VerifyOptions configures verification.
	VerifyOptions = verify.Options
)

// Verify checks classical soundness of a definition.
func Verify(p *Process) (*VerifyResult, error) {
	return verify.Check(p, verify.DefaultOptions())
}

// VerifyWith checks soundness with explicit options.
var VerifyWith = verify.Check

// Simulation.
type (
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a run.
	SimResult = sim.Result
	// Dist samples durations.
	Dist = sim.Dist
)

// Simulate runs a discrete-event simulation of a process.
var Simulate = sim.Run

// Distributions for simulation workloads.
type (
	FixedDist     = sim.Fixed
	ExpDist       = sim.Exp
	UniformDist   = sim.Uniform
	NormalDist    = sim.Normal
	LognormalDist = sim.Lognormal
)

// Mining and logs.
type (
	// EventLog is the mining log model (one trace per case).
	EventLog = history.Log
	// Trace is one case's event sequence.
	Trace = history.Trace
	// DFG is a directly-follows graph.
	DFG = mine.DFG
)

// Mining entry points.
var (
	BuildDFG    = mine.BuildDFG
	AlphaMiner  = mine.Alpha
	TokenReplay = mine.TokenReplay
	Performance = mine.Performance
	EncodeXES   = history.EncodeXES
	// WriteXES streams a log as XES to an io.Writer, one trace at a
	// time (large exports never materialise in memory).
	WriteXES  = history.WriteXES
	DecodeXES = history.DecodeXES
)

// History store surface (BPMS.History).
type (
	// History is the striped audit-event store.
	History = history.Store
	// HistoryStats reports the audit pipeline's shape and load.
	HistoryStats = history.StoreStats
)

// Business rules.
type (
	// DecisionTable is a rules table definition.
	DecisionTable = rules.Table
	// DecisionRule is one table row.
	DecisionRule = rules.Rule
	// CompiledTable is an evaluable decision table. Compilation also
	// builds a column index over the rules whose condition cells
	// decompose into `var == literal` / `var <op> literal` atoms, so
	// Eval on large tables probes candidate rule sets instead of
	// scanning every row; EvalBatch amortizes the probe buffers and
	// the per-call predicate memo across many cases, and EvalLinear
	// exposes the unindexed scan as a baseline and oracle.
	CompiledTable = rules.Compiled
	// TableDecision is the result of evaluating a decision table.
	TableDecision = rules.Decision
)

// Hit policies.
const (
	HitUnique    = rules.Unique
	HitFirst     = rules.First
	HitAny       = rules.Any
	HitPriority  = rules.Priority
	HitCollect   = rules.Collect
	HitRuleOrder = rules.RuleOrder
)

// CompileTable validates and compiles a decision table.
var CompileTable = rules.Compile
