// Integration tests exercising the public façade end to end: the full
// BPM lifecycle (model → verify → deploy → execute → audit → mine)
// through the root package only.
package bpms_test

import (
	"strings"
	"testing"
	"time"

	"bpms"
)

func TestPublicAPILifecycle(t *testing.T) {
	sys, err := bpms.Open(bpms.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.AddUser("ada", "reviewer")

	// Model with the builder, through the façade options.
	proc := bpms.NewProcess("pub").
		Start("in").
		ServiceTask("enrich", "enrich").
		UserTask("check", bpms.Name("Check"), bpms.Role("reviewer"), bpms.Priority(3)).
		XOR("gate", bpms.DefaultFlow("no")).
		ScriptTask("accept", bpms.Output("state", `"accepted"`)).
		ScriptTask("reject", bpms.Output("state", `"rejected"`)).
		XOR("merge").
		End("out").
		Flow("in", "enrich").
		Flow("enrich", "check").
		Flow("check", "gate").
		FlowIf("gate", "accept", "ok == true").
		FlowID("no", "gate", "reject", "").
		Flow("accept", "merge").
		Flow("reject", "merge").
		Flow("merge", "out").
		MustBuild()

	// Verify before deploying.
	vres, err := bpms.Verify(proc)
	if err != nil {
		t.Fatal(err)
	}
	if !vres.Sound {
		t.Fatalf("not sound: %v", vres.Violations)
	}

	// Round-trip through both codecs.
	jdata, err := bpms.EncodeJSON(proc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bpms.DecodeJSON(jdata); err != nil {
		t.Fatal(err)
	}
	xdata, err := bpms.EncodeXML(proc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bpms.DecodeXML(xdata); err != nil {
		t.Fatal(err)
	}

	// Handler using expression values.
	sys.Engine.RegisterHandler("enrich", func(tc bpms.TaskContext) (map[string]bpms.Value, error) {
		amount, _ := tc.Vars["amount"].AsInt()
		return map[string]bpms.Value{"enriched": bpms.IntValue(amount * 2)}, nil
	})
	if err := sys.Engine.Deploy(proc); err != nil {
		t.Fatal(err)
	}

	// Run several cases: half accepted, half rejected.
	for i := 0; i < 6; i++ {
		inst, err := sys.Engine.StartInstance("pub", map[string]any{"amount": 100 + i})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Status != bpms.StatusActive {
			t.Fatalf("case %d: %v", i, inst.Status)
		}
		items := sys.Tasks.OfferedItems("ada")
		if len(items) != 1 {
			t.Fatalf("case %d: offers = %d", i, len(items))
		}
		it := items[0]
		if _, err := sys.Tasks.Claim(it.ID, "ada"); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Tasks.Start(it.ID, "ada"); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Tasks.Complete(it.ID, "ada", map[string]any{"ok": i%2 == 0}); err != nil {
			t.Fatal(err)
		}
		final, err := sys.Engine.Instance(inst.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != bpms.StatusCompleted {
			t.Fatalf("case %d: %v", i, final.Status)
		}
		wantState := "accepted"
		if i%2 != 0 {
			wantState = "rejected"
		}
		if got, _ := final.Vars["state"].AsString(); got != wantState {
			t.Errorf("case %d: state = %q, want %q", i, got, wantState)
		}
		if got, _ := final.Vars["enriched"].AsInt(); got != int64((100+i)*2) {
			t.Errorf("case %d: enriched = %v", i, final.Vars["enriched"])
		}
	}

	// Mine the audit log through the façade.
	log := sys.Log()
	if len(log.Traces) != 6 {
		t.Fatalf("log traces = %d", len(log.Traces))
	}
	mined := bpms.AlphaMiner(log)
	conf := bpms.TokenReplay(mined, log)
	if conf.Fitness() < 0.99 {
		t.Errorf("rediscovery fitness = %g", conf.Fitness())
	}
	dfg := bpms.BuildDFG(log)
	if f := dfg.FitnessDFG(log); f != 1 {
		t.Errorf("dfg fitness = %g", f)
	}
	xes, err := bpms.EncodeXES(log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xes), "Check") {
		t.Error("XES lacks activity names")
	}
	back, err := bpms.DecodeXES(xes)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != 6 {
		t.Errorf("XES round trip traces = %d", len(back.Traces))
	}
}

func TestPublicAPISimulationAndRules(t *testing.T) {
	// A decision table drives a simulated process through the façade.
	table, err := bpms.CompileTable(bpms.DecisionTable{
		Name: "priority", HitPolicy: bpms.HitFirst, Outputs: []string{"prio"},
		Rules: []bpms.DecisionRule{
			{Conditions: []string{"amount > 500"}, Outputs: map[string]string{"prio": "9"}},
			{Conditions: nil, Outputs: map[string]string{"prio": "1"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := table.Eval(envLite{"amount": bpms.IntValue(900)})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Outputs["prio"].AsInt(); got != 9 {
		t.Errorf("prio = %v", d.Outputs["prio"])
	}

	proc := bpms.NewProcess("simproc").
		Start("s").
		UserTask("work", bpms.Role("crew")).
		End("e").
		Seq("s", "work", "e").
		MustBuild()
	res, err := bpms.Simulate(bpms.SimConfig{
		Process:        proc,
		Cases:          50,
		Interarrival:   bpms.ExpDist(time.Minute),
		DefaultService: bpms.FixedDist(30 * time.Second),
		Resources:      map[string][]string{"crew": {"x", "y"}},
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 50 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.CycleTime.Percentile(0.5) <= 0 {
		t.Error("cycle time not measured")
	}
	_, cases := bpms.Performance(res.Log)
	if cases.Cases != 50 {
		t.Errorf("performance cases = %d", cases.Cases)
	}
}

type envLite map[string]bpms.Value

func (m envLite) Lookup(name string) (bpms.Value, bool) {
	v, ok := m[name]
	return v, ok
}
