module bpms

go 1.24
