module bpms

go 1.23
