#!/usr/bin/env bash
# Crash-recovery gate: prove that no acknowledged instance is lost
# when bpmsd is SIGKILLed under the group-commit (-sync batch) policy.
#
#  1. start bpmsd -sync batch (SHARDS engine shards, HIST_STRIPES
#     history stripes) on a fresh data dir
#  2. deploy a user-task definition and start N instances via bpmsctl
#     (each `start` returns only after the durable WAL ack of the
#     instance's owner shard)
#  3. SIGKILL the daemon — no drain, no final fsync
#  4. restart on the same data dir and assert all N instances are
#     recovered and active (with SHARDS > 1 this exercises the
#     parallel per-shard recovery path and the instance-hash routing),
#     that the history journal recovered alongside the engine
#     journal (each instance's audit trail replays with its
#     instance.started event in first position), and that the N
#     reissued work items landed back in the (striped) worklist —
#     offered to the clerk role's user
#  5. SIGTERM the second daemon and check the graceful-shutdown path
#
# SHARDS=4 N=16 HIST_STRIPES=2 WORKLIST_STRIPES=4
# ./scripts/crash-recovery.sh runs the sharded + striped variant.
#
# SNAPSHOT_EVERY=8 ./scripts/crash-recovery.sh additionally runs the
# daemon with snapshots on and 4 KiB WAL segments, recovers through a
# snapshot + journal suffix, and asserts the per-shard WAL on-disk
# footprint stays bounded as instances keep starting (compaction after
# each snapshot must delete sealed segments below the snapshot index).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18080}"
N="${N:-5}"
SHARDS="${SHARDS:-1}"
HIST_STRIPES="${HIST_STRIPES:-1}"
WORKLIST_STRIPES="${WORKLIST_STRIPES:-1}"
SNAPSHOT_EVERY="${SNAPSHOT_EVERY:-0}"
SNAP_FLAGS=()
if [ "$SNAPSHOT_EVERY" -gt 0 ]; then
  SNAP_FLAGS=(-snapshot-every "$SNAPSHOT_EVERY" -wal-segment-size 4096)
fi
BIN="$(mktemp -d)"
DATA="$(mktemp -d)"
LOG="$BIN/bpmsd.log"
cleanup() {
  if [ -n "${PID:-}" ]; then kill -9 "$PID" 2>/dev/null || true; fi
  rm -rf "$BIN" "$DATA"
}
trap cleanup EXIT

go build -o "$BIN/bpmsd" ./cmd/bpmsd
go build -o "$BIN/bpmsctl" ./cmd/bpmsctl
ctl() { "$BIN/bpmsctl" -server "http://$ADDR" "$@"; }

# /readyz answers 200 only once every shard has replayed and none is
# degraded — the recovery gate rides on the real readiness probe.
wait_ready() {
  for _ in $(seq 100); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "bpmsd did not become ready; log:" >&2
  cat "$LOG" >&2
  return 1
}

echo "== start bpmsd (-sync batch, $SHARDS shard(s), $HIST_STRIPES history stripe(s), $WORKLIST_STRIPES worklist stripe(s), snapshot-every $SNAPSHOT_EVERY) on $DATA"
"$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -sync batch -shards "$SHARDS" -history-stripes "$HIST_STRIPES" -worklist-stripes "$WORKLIST_STRIPES" ${SNAP_FLAGS[@]+"${SNAP_FLAGS[@]}"} -user alice=clerk >"$LOG" 2>&1 &
PID=$!
wait_ready

echo "== deploy definition and start $N instances (durable acks)"
ctl deploy scripts/testdata/approval.json >/dev/null
for i in $(seq "$N"); do
  ctl start approval "amount=$i" >/dev/null
done
started=$(ctl ps | grep -c '"approval-' || true)
[ "$started" -eq "$N" ] || { echo "started $started of $N" >&2; exit 1; }
# History is recorded through the async pipeline; the state acks do
# not cover it. Give the stripe committers and the WAL's batch tick a
# moment to put the audit tail on disk before we pull the plug.
sleep 0.5

echo "== SIGKILL bpmsd (pid $PID)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "== restart on the same data dir"
"$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -sync batch -shards "$SHARDS" -history-stripes "$HIST_STRIPES" -worklist-stripes "$WORKLIST_STRIPES" ${SNAP_FLAGS[@]+"${SNAP_FLAGS[@]}"} -user alice=clerk >"$LOG" 2>&1 &
PID=$!
wait_ready

recovered=$(ctl ps | grep -c '"approval-' || true)
if [ "$recovered" -ne "$N" ]; then
  echo "FAIL: recovered $recovered of $N acked instances" >&2
  ctl ps >&2 || true
  cat "$LOG" >&2
  exit 1
fi
# They must still be active (parked at the user task), not faulted.
active=$(ctl stats | grep -o '"active": *[0-9]*' | grep -o '[0-9]*$' || echo 0)
if [ "$active" -ne "$N" ]; then
  echo "FAIL: $active of $N recovered instances active" >&2
  ctl stats >&2 || true
  exit 1
fi
echo "OK: all $N acked instances recovered and active after SIGKILL"

# Worklist recovery: every recovered instance re-issues its parked
# work item into the (striped) in-memory worklist, offered to alice
# (the clerk). The striped variant routes the items across
# WORKLIST_STRIPES stripes and must still answer per-user queries
# identically.
reissued=$(ctl tasks alice | grep -o '"id": *"wi-[0-9]*"' | sort -u | wc -l)
if [ "$reissued" -ne "$N" ]; then
  echo "FAIL: $reissued of $N reissued work items on alice's worklist" >&2
  ctl tasks alice >&2 || true
  exit 1
fi
# The worklist block sorts after the history block in the stats JSON,
# so the last "stripes" key is the worklist's.
wl_stripes=$(ctl stats | grep -o '"stripes": *[0-9]*' | tail -1 | grep -o '[0-9]*$' || echo 0)
if [ "$wl_stripes" -ne "$WORKLIST_STRIPES" ]; then
  echo "FAIL: stats report $wl_stripes worklist stripes, want $WORKLIST_STRIPES" >&2
  ctl stats >&2 || true
  exit 1
fi
echo "OK: $reissued reissued work item(s) across $wl_stripes worklist stripe(s)"

# History-journal recovery: every instance's audit trail must replay
# from the striped history journals, ordered per instance (the
# instance.started event comes first).
hist_ok=0
for id in $(ctl ps | grep -o '"approval-[0-9]*"' | tr -d '"'); do
  trail=$(ctl history "$id")
  first_type=$(echo "$trail" | grep -o '"type": *"[^"]*"' | head -1 | sed 's/.*"type": *"//;s/"//')
  if [ "$first_type" != "instance.started" ]; then
    echo "FAIL: history of $id does not start with instance.started (got '$first_type')" >&2
    echo "$trail" >&2
    exit 1
  fi
  hist_ok=$((hist_ok + 1))
done
[ "$hist_ok" -eq "$N" ] || { echo "FAIL: history recovered for $hist_ok of $N instances" >&2; exit 1; }
events=$(ctl stats | grep -o '"events": *[0-9]*' | head -1 | grep -o '[0-9]*$' || echo 0)
if [ "$events" -lt "$N" ]; then
  echo "FAIL: only $events audit events recovered for $N instances" >&2
  ctl stats >&2 || true
  exit 1
fi
echo "OK: history journal recovered ($events events, per-instance order intact)"

if [ "$SNAPSHOT_EVERY" -gt 0 ]; then
  echo "== snapshot compaction: WAL footprint bounded under sustained starts"
  # Enough starts to cross the snapshot threshold many times over and
  # roll plenty of 4 KiB segments; without compaction the WAL would
  # grow past any fixed bound.
  EXTRA=40
  for i in $(seq "$EXTRA"); do
    ctl start approval "amount=$((100 + i))" >/dev/null
  done
  sleep 1 # snapshots run asynchronously off the append path
  snaps=$(find "$DATA" -name 'snap-*.snap' | wc -l)
  if [ "$snaps" -lt 1 ]; then
    echo "FAIL: no snapshot on disk after $EXTRA starts with -snapshot-every $SNAPSHOT_EVERY" >&2
    find "$DATA" -type f >&2
    exit 1
  fi
  # Per shard: everything below the snapshot index is compacted away,
  # so the WAL keeps at most the active segment plus the few sealed
  # ones appended since the last snapshot. 10 segments (40 KiB) is far
  # under what the uncompacted history of N+EXTRA instances occupies.
  for statedir in $(find "$DATA" -type d -name state); do
    segs=$(find "$statedir" -name 'wal-*.log' | wc -l)
    bytes=$(find "$statedir" -name 'wal-*.log' -exec cat {} + | wc -c)
    if [ "$segs" -gt 10 ]; then
      echo "FAIL: $statedir holds $segs WAL segments ($bytes bytes) after snapshots — compaction not bounding the WAL" >&2
      ls -l "$statedir" >&2
      exit 1
    fi
  done
  # The stats endpoint must expose the recovery/footprint telemetry
  # the snapshot path feeds.
  ctl stats | grep -q '"recoverySeconds"' || { echo "FAIL: stats missing recoverySeconds" >&2; exit 1; }
  ctl stats | grep -q '"diskBytes"' || { echo "FAIL: stats missing diskBytes" >&2; exit 1; }
  echo "OK: $snaps snapshot(s) on disk, per-shard WAL bounded, footprint telemetry exposed"
fi

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$PID"
for _ in $(seq 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
  echo "FAIL: bpmsd did not exit within 10s of SIGTERM" >&2
  cat "$LOG" >&2
  exit 1
fi
wait "$PID" 2>/dev/null || true
grep -q "shutdown complete" "$LOG" || {
  echo "FAIL: no shutdown summary in log" >&2
  cat "$LOG" >&2
  exit 1
}
echo "OK: graceful shutdown with summary:"
grep "shutdown complete" "$LOG"
