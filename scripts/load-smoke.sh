#!/usr/bin/env bash
# Load-smoke gate (T14): boot a real bpmsd with observability on,
# point the bpmsload macro traffic generator at it for a short
# open-loop run over two scenarios, scrape /metrics mid-run, and
# require
#
#   - a nonzero number of completed instances (the human scenario's
#     worker-user pool actually ground tasks through claim → start →
#     complete, and the automatic pipeline enacted end to end),
#   - zero 5xx responses from the daemon under load,
#   - live instrumentation: nonzero bpms_http_requests_total and
#     bpms_engine_transition_seconds histogram counts at /metrics, and
#   - a working SLA sweeper: nonzero bpms_audit_sweeps_total plus at
#     least one bpms_audit_violations_total, forced deterministically
#     by an instance whose user task routes to a role nobody staffs
#     (it blows through the -task-sla default deadline).
#
# The machine-readable report lands in BENCH_T14.json and the final
# metrics scrape in metrics-snapshot.txt (both uploaded as CI
# artifacts). Tunables:
#
#   ACCOUNTS=50 DURATION=10s RATE=30 SCENARIOS=quickstart,mining
#   ADDR=127.0.0.1:18090 ./scripts/load-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18090}"
ACCOUNTS="${ACCOUNTS:-50}"
DURATION="${DURATION:-20s}"
RATE="${RATE:-30}"
SCENARIOS="${SCENARIOS:-quickstart,mining}"
OUT="${OUT:-BENCH_T14.json}"
SNAPSHOT="${SNAPSHOT:-metrics-snapshot.txt}"

BIN="$(mktemp -d)"
DATA="$(mktemp -d)"
LOG="$BIN/bpmsd.log"
cleanup() {
  if [ -n "${PID:-}" ]; then kill "$PID" 2>/dev/null || true; fi
  rm -rf "$BIN" "$DATA"
}
trap cleanup EXIT

go build -o "$BIN/bpmsd" ./cmd/bpmsd
go build -o "$BIN/bpmsload" ./cmd/bpmsload

"$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -shards 2 -sync batch \
  -metrics -audit-interval 500ms -task-sla 2s >"$LOG" 2>&1 &
PID=$!

# /readyz answers 200 only once every shard has replayed and none is
# degraded — a stricter readiness signal than a stats probe.
for _ in $(seq 100); do
  if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "http://$ADDR/readyz" >/dev/null || {
  echo "bpmsd did not become ready; log:" >&2
  cat "$LOG" >&2
  exit 1
}

# Plant a deterministic SLA violation: a user task routed to a role no
# user holds sits untouched past the 2s default deadline, so the
# sweeper must find it however fast the load's worker pool drains the
# staffed scenarios.
curl -sf -X POST "http://$ADDR/api/v1/definitions" \
  -H 'Content-Type: application/json' \
  --data-binary @scripts/testdata/unstaffed.json >/dev/null
curl -sf -X POST "http://$ADDR/api/v1/instances" \
  -H 'Content-Type: application/json' \
  -d '{"processId":"unstaffed"}' >/dev/null

echo "== bpmsload: $ACCOUNTS accounts, $DURATION, ~$RATE starts/s, scenarios $SCENARIOS"
"$BIN/bpmsload" \
  -server "http://$ADDR" \
  -accounts "$ACCOUNTS" \
  -duration "$DURATION" \
  -rate "$RATE" \
  -scenarios "$SCENARIOS" \
  -report 5s \
  -out "$OUT" \
  -min-completed 1 \
  -max-5xx 0 &
LOAD_PID=$!

# Scrape mid-run: the registry must serve a concurrent scrape while
# every hot path hammers its instruments.
sleep 5
curl -sf "http://$ADDR/metrics" -o "$BIN/metrics-midrun.txt" || {
  echo "mid-run /metrics scrape failed" >&2
  kill "$LOAD_PID" 2>/dev/null || true
  exit 1
}

wait "$LOAD_PID"

curl -sf "http://$ADDR/metrics" -o "$SNAPSHOT"
curl -sf "http://$ADDR/api/v1/violations" -o "$BIN/violations.json"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=

# msum sums every sample of one family in a scrape (labels collapsed).
msum() {
  awk -v fam="$1" 'index($1, fam"{") == 1 || $1 == fam { s += $NF } END { printf "%.0f\n", s+0 }' "$2"
}

fail=0
check_nonzero() {
  local v
  v="$(msum "$1" "$SNAPSHOT")"
  if [ "$v" -lt "${2:-1}" ]; then
    echo "GATE FAIL: $1 = $v (want >= ${2:-1})" >&2
    fail=1
  else
    echo "   gate ok: $1 = $v"
  fi
}
check_nonzero bpms_http_requests_total
check_nonzero bpms_engine_transition_seconds_bucket
check_nonzero bpms_audit_sweeps_total
check_nonzero bpms_audit_violations_total 1
if [ "$fail" -ne 0 ]; then
  echo "== /api/v1/violations:" >&2
  cat "$BIN/violations.json" >&2 || true
  echo "== final scrape in $SNAPSHOT" >&2
  exit 1
fi

echo "== load smoke OK — report in $OUT, metrics snapshot in $SNAPSHOT"
