#!/usr/bin/env bash
# Load-smoke gate (T14): boot a real bpmsd, point the bpmsload macro
# traffic generator at it for a short open-loop run over two
# scenarios, and require
#
#   - a nonzero number of completed instances (the human scenario's
#     worker-user pool actually ground tasks through claim → start →
#     complete, and the automatic pipeline enacted end to end), and
#   - zero 5xx responses from the daemon under load.
#
# The machine-readable report lands in BENCH_T14.json (uploaded as a
# CI artifact). Tunables:
#
#   ACCOUNTS=50 DURATION=10s RATE=30 SCENARIOS=quickstart,mining
#   ADDR=127.0.0.1:18090 ./scripts/load-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18090}"
ACCOUNTS="${ACCOUNTS:-50}"
DURATION="${DURATION:-20s}"
RATE="${RATE:-30}"
SCENARIOS="${SCENARIOS:-quickstart,mining}"
OUT="${OUT:-BENCH_T14.json}"

BIN="$(mktemp -d)"
DATA="$(mktemp -d)"
LOG="$BIN/bpmsd.log"
cleanup() {
  if [ -n "${PID:-}" ]; then kill "$PID" 2>/dev/null || true; fi
  rm -rf "$BIN" "$DATA"
}
trap cleanup EXIT

go build -o "$BIN/bpmsd" ./cmd/bpmsd
go build -o "$BIN/bpmsload" ./cmd/bpmsload

"$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -shards 2 -sync batch >"$LOG" 2>&1 &
PID=$!

for _ in $(seq 100); do
  if curl -sf "http://$ADDR/api/v1/stats" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "http://$ADDR/api/v1/stats" >/dev/null || {
  echo "bpmsd did not become ready; log:" >&2
  cat "$LOG" >&2
  exit 1
}

echo "== bpmsload: $ACCOUNTS accounts, $DURATION, ~$RATE starts/s, scenarios $SCENARIOS"
"$BIN/bpmsload" \
  -server "http://$ADDR" \
  -accounts "$ACCOUNTS" \
  -duration "$DURATION" \
  -rate "$RATE" \
  -scenarios "$SCENARIOS" \
  -report 5s \
  -out "$OUT" \
  -min-completed 1 \
  -max-5xx 0

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=

echo "== load smoke OK — report in $OUT"
