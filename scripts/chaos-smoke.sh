#!/usr/bin/env bash
# Chaos-smoke gate: prove the fail-safe story end to end against a
# real bpmsd with faults injected under the storage layer.
#
# Episode 1 — fsync fault, fail-stop, zero acked-but-lost:
#   boot bpmsd with -fault 'path=state;fsync-at=K', drive durable
#   starts through bpmsctl until the injected fsync trips the shard,
#   then assert the degradation surface (write → 503 shard_degraded
#   with Retry-After, reads still serve, /readyz 503, /healthz 200,
#   bpms_shard_degraded=1 at /metrics), scrape the fault report,
#   SIGKILL, restart WITHOUT the fault, and require every acked start
#   to be recovered — acked-but-lost must be exactly zero.
#
# Episode 2 — ENOSPC budget: same contract with the journal hitting a
#   byte-budget wall instead of an I/O error.
#
# Episode 3 — overload shed + client retry: boot a healthy bpmsd with
#   a deliberately tiny write-admission gate and point bpmsload at it
#   at ~2x what the gate admits. Sheds answer 429/503 with the
#   machine-readable "overloaded" code; bpmsload's retry/backoff layer
#   must carry >= 99% of workflow operations to completion with zero
#   unclassified 5xx.
#
# Artifacts: CHAOS_T17.json (episode-3 load report) and
# chaos-fault-report.json (episode-1 pre-kill /api/v1/stats document,
# injected-fault counters included) land next to BENCH_T14.json in CI.
#
# Tunables: ADDR=127.0.0.1:18091 N=40 DURATION=10s RATE=60
# ./scripts/chaos-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18091}"
N="${N:-40}"              # start attempts per fault episode
DURATION="${DURATION:-10s}"
RATE="${RATE:-60}"        # overload offered rate (gate admits far less)
OUT="${OUT:-CHAOS_T17.json}"
FAULT_REPORT="${FAULT_REPORT:-chaos-fault-report.json}"

BIN="$(mktemp -d)"
cleanup() {
  if [ -n "${PID:-}" ]; then kill -9 "$PID" 2>/dev/null || true; fi
  rm -rf "$BIN" "${DATA:-}"
}
trap cleanup EXIT

go build -o "$BIN/bpmsd" ./cmd/bpmsd
go build -o "$BIN/bpmsctl" ./cmd/bpmsctl
go build -o "$BIN/bpmsload" ./cmd/bpmsload
ctl() { "$BIN/bpmsctl" -server "http://$ADDR" "$@"; }

LOG="$BIN/bpmsd.log"
wait_ready() {
  for _ in $(seq 100); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "bpmsd did not become ready; log:" >&2
  cat "$LOG" >&2
  return 1
}
wait_listening() {
  # Degradation can happen before the first probe: wait for the HTTP
  # listener only (healthz is live even when degraded).
  for _ in $(seq 100); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "bpmsd never listened; log:" >&2
  cat "$LOG" >&2
  return 1
}

# fault_episode FAULT_SPEC EPISODE_NAME
# Runs the inject → fail-stop → SIGKILL → clean-restart → zero-lost
# cycle for one fault plan.
fault_episode() {
  local spec="$1" name="$2"
  DATA="$(mktemp -d)"
  echo "== [$name] bpmsd with injected fault: $spec"
  "$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -sync batch -metrics \
    -fault "$spec" -user alice=clerk >"$LOG" 2>&1 &
  PID=$!
  wait_listening
  wait_ready

  ctl deploy scripts/testdata/approval.json >/dev/null

  # Durable starts until the fault trips the shard. bpmsctl runs with
  # -retries 1: a start either acks durably or fails — no ambiguity
  # about what must survive.
  acked=0
  for i in $(seq "$N"); do
    if ctl -retries 1 start approval "amount=$i" >/dev/null 2>&1; then
      acked=$((acked + 1))
    else
      break
    fi
  done
  if [ "$acked" -lt 1 ] || [ "$acked" -ge "$N" ]; then
    echo "FAIL [$name]: fault never tripped ($acked/$N starts acked)" >&2
    cat "$LOG" >&2
    exit 1
  fi
  echo "   $acked starts acked before fail-stop"

  # Degradation surface: a write answers 503 + shard_degraded +
  # Retry-After.
  resp="$BIN/resp.txt"
  status=$(curl -s -o "$resp" -w '%{http_code}' -D "$BIN/hdrs.txt" \
    -X POST "http://$ADDR/api/v1/instances" \
    -H 'Content-Type: application/json' -d '{"processId":"approval"}')
  if [ "$status" != "503" ] || ! grep -q '"code":"shard_degraded"' "$resp"; then
    echo "FAIL [$name]: degraded write answered $status $(cat "$resp")" >&2
    exit 1
  fi
  grep -qi '^Retry-After:' "$BIN/hdrs.txt" || {
    echo "FAIL [$name]: degraded 503 missing Retry-After" >&2
    cat "$BIN/hdrs.txt" >&2
    exit 1
  }
  # Reads still serve from the frozen state. The state may hold one
  # more instance than was acked: the transition that hit the fault
  # mutated memory before the failed fsync refused its ack.
  got=$(ctl ps | grep -c '"approval-' || true)
  if [ "$got" -lt "$acked" ]; then
    echo "FAIL [$name]: degraded reads show $got of $acked acked instances" >&2
    exit 1
  fi
  # Probes: /readyz refuses, /healthz lives, the gauge shows the shard.
  if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
    echo "FAIL [$name]: /readyz still 200 on a degraded system" >&2
    exit 1
  fi
  curl -sf "http://$ADDR/healthz" >/dev/null || {
    echo "FAIL [$name]: /healthz down on a degraded (but alive) system" >&2
    exit 1
  }
  # Scrape to a file: grep -q closing the pipe early would trip
  # pipefail on curl's write error.
  curl -s "http://$ADDR/metrics" -o "$BIN/metrics.txt"
  grep -q '^bpms_shard_degraded{shard="0"} 1' "$BIN/metrics.txt" || {
    echo "FAIL [$name]: bpms_shard_degraded gauge not 1" >&2
    grep bpms_shard_degraded "$BIN/metrics.txt" >&2 || true
    exit 1
  }
  # Scrape the fault report (stats carries the injector counters)
  # before pulling the plug.
  curl -sf "http://$ADDR/api/v1/stats" -o "$FAULT_REPORT"
  grep -q '"faults"' "$FAULT_REPORT" || {
    echo "FAIL [$name]: stats missing injected-fault report" >&2
    exit 1
  }
  echo "   degraded surface OK (503 shard_degraded, reads serve, probes split)"

  echo "== [$name] SIGKILL and clean restart"
  kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=
  "$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -sync batch -user alice=clerk >"$LOG" 2>&1 &
  PID=$!
  wait_ready

  recovered=$(ctl ps | grep -c '"approval-' || true)
  if [ "$recovered" -lt "$acked" ]; then
    echo "FAIL [$name]: acked-but-lost! recovered $recovered of $acked acked instances" >&2
    cat "$LOG" >&2
    exit 1
  fi
  echo "OK [$name]: zero acked-but-lost ($recovered recovered >= $acked acked)"

  kill -TERM "$PID"
  for _ in $(seq 100); do kill -0 "$PID" 2>/dev/null || break; sleep 0.1; done
  wait "$PID" 2>/dev/null || true
  PID=
  rm -rf "$DATA"; DATA=
}

fault_episode "path=state;fsync-at=$((N / 2))" "fsync-fault"
fault_episode "path=state;enospc-after=8192" "enospc"

echo "== [overload] bpmsd with a tiny write gate over slow storage, bpmsload at ~2x"
DATA="$(mktemp -d)"
# fsync-latency makes every group commit slow, so write admission
# genuinely saturates: one write slot, a 2-deep queue, and a 100ms
# queue timeout guarantee real sheds the retry layer must absorb.
"$BIN/bpmsd" -addr "$ADDR" -data "$DATA" -sync batch -metrics \
  -fault "path=state;fsync-latency=25ms" \
  -max-inflight-writes 1 -admission-queue 2 -admission-timeout 100ms \
  >"$LOG" 2>&1 &
PID=$!
wait_ready

"$BIN/bpmsload" \
  -server "http://$ADDR" \
  -accounts 40 \
  -duration "$DURATION" \
  -rate "$RATE" \
  -scenarios quickstart,mining \
  -retries 6 \
  -report 5s \
  -out "$OUT" \
  -min-completed 1 \
  -max-5xx 0

# >= 99% completion: workflow operations that still failed after the
# retry budget must be under 1% of those that succeeded.
events=$(grep -o '"events": *[0-9]*' "$OUT" | tail -1 | grep -o '[0-9]*$')
errors=$(grep -o '"errors": *[0-9]*' "$OUT" | tail -1 | grep -o '[0-9]*$')
shed=$(grep -o '"shedRetryable": *[0-9]*' "$OUT" | tail -1 | grep -o '[0-9]*$')
retries=$(grep -o '"clientRetries": *[0-9]*' "$OUT" | grep -o '[0-9]*$')
if [ "$((errors * 100))" -gt "$events" ]; then
  echo "GATE FAIL: $errors residual errors vs $events completed ops (want < 1%)" >&2
  exit 1
fi
echo "   gate ok: $events ops completed, $errors residual errors, $shed shed, $retries client retries"
# The overload must be real: the retry layer absorbed actual sheds
# (shedRetryable counts only residual shed errors, so 0 there is the
# success case — clientRetries is the absorbed-shed evidence).
if [ "${retries:-0}" -lt 1 ]; then
  echo "GATE FAIL: no client retries ($retries) — overload never bit" >&2
  exit 1
fi
# The server saw it too: its own shed counter is in stats.
curl -sf "http://$ADDR/api/v1/stats" -o "$BIN/stats.txt"
served_shed=$(grep -o '"shedRequests": *[0-9]*' "$BIN/stats.txt" | grep -o '[0-9]*$' || echo 0)
if [ "${served_shed:-0}" -lt 1 ]; then
  echo "GATE FAIL: server shedRequests = $served_shed (admission control not active?)" >&2
  cat "$BIN/stats.txt" >&2
  exit 1
fi
echo "   server shed $served_shed requests; retry/backoff carried the load through"

kill -TERM "$PID"
for _ in $(seq 100); do kill -0 "$PID" 2>/dev/null || break; sleep 0.1; done
wait "$PID" 2>/dev/null || true
PID=

echo "== chaos smoke OK — load report in $OUT, fault report in $FAULT_REPORT"
