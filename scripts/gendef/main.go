// gendef regenerates scripts/testdata/approval.json, the definition
// the crash-recovery CI gate deploys through bpmsctl: a minimal
// user-task process whose instances park at the task, so they are
// still active (and must be recovered) after a SIGKILL.
//
//	go run ./scripts/gendef > scripts/testdata/approval.json
package main

import (
	"fmt"
	"log"
	"os"

	"bpms"
)

func main() {
	proc := bpms.NewProcess("approval").
		Start("received").
		UserTask("approve", bpms.Name("Approve request"), bpms.Role("clerk")).
		End("done").
		Seq("received", "approve", "done").
		MustBuild()
	data, err := bpms.EncodeJSON(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stdout, string(data))
}
